"""Diagnostics wired through the serving runtime, end to end.

Request ids on results, flight records per request (miss and cache-hit
paths), tail-sampled trace retention under ``obs.enabled()``, histogram
exemplars, and the ``diagnostics=False`` off-switch.
"""

import pytest

from repro import obs
from repro.obs.diag import DiagConfig
from repro.queries import Entity, Projection
from repro.serve import ServeConfig, ServeRuntime

pytestmark = pytest.mark.diag


@pytest.fixture()
def runtime(model, tiny_kg):
    config = ServeConfig(max_batch_size=8, flush_timeout=0.002,
                         num_workers=1)
    with ServeRuntime(model, kg=tiny_kg, config=config) as runtime:
        yield runtime


def distinct_queries(kg, n):
    seen, out = set(), []
    for head, rel, _ in kg:
        if (head, rel) not in seen:
            seen.add((head, rel))
            out.append(Projection(rel, Entity(head)))
        if len(out) == n:
            break
    return out


class TestRequestIdsOnResults:
    def test_every_result_carries_a_distinct_id(self, runtime, tiny_kg):
        results = [runtime.answer(q, top_k=3)
                   for q in distinct_queries(tiny_kg, 5)]
        ids = [r.request_id for r in results]
        assert all(ids)
        assert len(set(ids)) == 5

    def test_caller_supplied_id_is_honoured(self, runtime, tiny_kg):
        (query,) = distinct_queries(tiny_kg, 1)
        future = runtime.submit(query, top_k=3,
                                request_id="ticket-42", tenant="acme")
        result = future.result(timeout=10)
        assert result.request_id == "ticket-42"
        record = runtime.diag.flight.get("ticket-42")
        assert record is not None
        assert record.tenant == "acme"

    def test_ids_minted_even_with_diagnostics_off(self, model, tiny_kg):
        config = ServeConfig(max_batch_size=4, num_workers=1,
                             diagnostics=False)
        with ServeRuntime(model, kg=tiny_kg, config=config) as runtime:
            assert runtime.diag is None
            (query,) = distinct_queries(tiny_kg, 1)
            result = runtime.answer(query, top_k=3)
            assert result.request_id  # the join key survives the switch
            runtime.stats()  # and stats does not trip over diag=None


class TestFlightRecords:
    def test_model_path_record_is_complete(self, runtime, tiny_kg):
        (query,) = distinct_queries(tiny_kg, 1)
        result = runtime.answer(query, top_k=3)
        record = runtime.diag.flight.get(result.request_id)
        assert record is not None
        assert record.source == "model"
        assert record.cache == "miss"
        assert record.structure  # canonical batch key, e.g. "P(E)"
        assert record.batch_size >= 1
        assert record.latency_ms > 0
        assert record.queue_ms >= 0
        assert record.embed_ms > 0
        assert record.result_count == len(result.entity_ids)
        assert record.model_version == runtime.model_version
        assert record.error == ""
        assert record.completed_at > 0

    def test_cache_hit_gets_its_own_record(self, runtime, tiny_kg):
        (query,) = distinct_queries(tiny_kg, 1)
        first = runtime.answer(query, top_k=3)
        second = runtime.answer(query, top_k=3)
        assert second.source == "answer_cache"
        assert second.request_id != first.request_id
        record = runtime.diag.flight.get(second.request_id)
        assert record.cache == "hit"
        assert record.source == "answer_cache"
        assert record.result_count == len(second.entity_ids)

    def test_commits_feed_the_slo_engine(self, runtime, tiny_kg):
        for query in distinct_queries(tiny_kg, 4):
            runtime.answer(query, top_k=3)
        availability = runtime.diag.slo.objectives[0]
        assert runtime.diag.slo.burn_rate(availability, 300.0) == 0.0
        payload = runtime.diag.slo_payload()
        assert {o["slo"] for o in payload["objectives"]} == \
            {"availability", "latency_p99"}

    def test_latency_exemplars_resolve_to_flight_entries(self, runtime,
                                                         tiny_kg):
        results = [runtime.answer(q, top_k=3)
                   for q in distinct_queries(tiny_kg, 4)]
        pairs = runtime.metrics.histogram("latency_ms").exemplars()
        assert pairs, "latency histogram recorded no exemplars"
        ids = {rid for _, rid in pairs}
        assert ids == {r.request_id for r in results}
        for rid in ids:
            assert runtime.diag.flight.get(rid) is not None


class TestTailSampledTraces:
    def test_slow_request_trace_retained_fast_one_dropped(self, model,
                                                          tiny_kg):
        config = ServeConfig(
            max_batch_size=4, num_workers=1,
            diag=DiagConfig(trace_latency_ms=0.0, trace_top_p=None))
        with obs.enabled():
            with ServeRuntime(model, kg=tiny_kg, config=config) as runtime:
                (query,) = distinct_queries(tiny_kg, 1)
                result = runtime.answer(query, top_k=3)
                spans = runtime.diag.trace(result.request_id)
                assert spans is not None
                names = {s.name for s in spans}
                assert "serve.request" in names
                assert "serve.embed" in names
                assert {s.attrs.get("request_id") for s in spans} == \
                    {result.request_id}
                record = runtime.diag.flight.get(result.request_id)
                assert record.trace_retained

    def test_happy_path_leaves_no_retained_trace(self, model, tiny_kg):
        config = ServeConfig(
            max_batch_size=4, num_workers=1,
            diag=DiagConfig(trace_latency_ms=10_000.0, trace_top_p=None))
        with obs.enabled():
            with ServeRuntime(model, kg=tiny_kg, config=config) as runtime:
                (query,) = distinct_queries(tiny_kg, 1)
                result = runtime.answer(query, top_k=3)
                assert runtime.diag.trace(result.request_id) is None
                assert len(runtime.diag.sampler) == 0

    def test_tracing_disabled_still_records_flights(self, model, tiny_kg):
        config = ServeConfig(
            max_batch_size=4, num_workers=1,
            diag=DiagConfig(trace_latency_ms=0.0, trace_top_p=None))
        with ServeRuntime(model, kg=tiny_kg, config=config) as runtime:
            (query,) = distinct_queries(tiny_kg, 1)
            result = runtime.answer(query, top_k=3)
            assert runtime.diag.flight.get(result.request_id) is not None
            assert runtime.diag.trace(result.request_id) is None


class TestUptime:
    def test_stats_publishes_uptime_gauge(self, runtime):
        runtime.stats()
        uptime = runtime.metrics.snapshot().gauges["uptime_seconds"]
        assert uptime >= 0.0
