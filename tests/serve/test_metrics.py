"""Counters, gauges, histograms, snapshots, periodic reporting."""

import threading

import pytest

from repro.serve import (Histogram, MetricsRegistry, PeriodicReporter,
                         format_snapshot)


class TestPrimitives:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc()
        counter.inc(4)
        assert registry.counter("requests").value == 5

    def test_gauge(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.add(-1)
        assert gauge.value == 2.0

    def test_histogram_percentiles(self):
        histogram = Histogram(window=1000)
        for value in range(1, 101):
            histogram.observe(float(value))
        stats = histogram.stats()
        assert stats.count == 100
        assert stats.p50 == pytest.approx(50.5)
        assert stats.p99 == pytest.approx(99.01)
        assert stats.max == 100.0

    def test_histogram_window_slides(self):
        histogram = Histogram(window=10)
        for value in range(100):
            histogram.observe(float(value))
        stats = histogram.stats()
        assert stats.count == 100       # lifetime count
        assert stats.p50 >= 90.0        # percentiles over the window only

    def test_empty_histogram(self):
        stats = Histogram().stats()
        assert stats.count == 0 and stats.p99 == 0.0


class TestSnapshot:
    def test_hit_rate(self):
        registry = MetricsRegistry()
        registry.counter("answer_cache_hits").inc(3)
        registry.counter("answer_cache_misses").inc(1)
        snapshot = registry.snapshot()
        assert snapshot.hit_rate("answer_cache") == pytest.approx(0.75)
        assert snapshot.hit_rate("embedding_cache") == 0.0

    def test_format_contains_percentiles_and_hit_rate(self):
        registry = MetricsRegistry()
        registry.counter("answer_cache_hits").inc(1)
        registry.counter("answer_cache_misses").inc(1)
        registry.histogram("latency_ms").observe(5.0)
        registry.gauge("queue_depth").set(2)
        text = format_snapshot(registry.snapshot())
        for needle in ("p50", "p95", "p99", "answer_cache_hit_rate",
                       "queue_depth", "latency_ms"):
            assert needle in text


class TestPeriodicReporter:
    def test_emits_snapshots(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(7)
        seen = threading.Event()
        snapshots = []

        def collect(snapshot):
            snapshots.append(snapshot)
            seen.set()

        reporter = PeriodicReporter(registry, collect, interval=0.02)
        reporter.start()
        try:
            assert seen.wait(timeout=5.0)
        finally:
            reporter.stop()
        assert snapshots[0].counters["requests"] == 7

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            PeriodicReporter(MetricsRegistry(), lambda s: None, interval=0)


class TestReset:
    def test_reset_drops_samples_and_count(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        histogram.reset()
        assert histogram.count == 0
        stats = histogram.stats()
        assert stats.count == 0 and stats.mean == 0.0

    def test_observing_after_reset_starts_fresh(self):
        histogram = Histogram()
        histogram.observe(100.0)
        histogram.reset()
        histogram.observe(4.0)
        assert histogram.stats().max == 4.0


class TestSnapshotRendering:
    def test_zero_sample_histogram_renders_no_samples(self):
        registry = MetricsRegistry()
        registry.histogram("latency_ms")  # created, never observed
        text = format_snapshot(registry.snapshot())
        assert "(no samples)" in text
        assert "nan" not in text.lower()

    def test_non_finite_samples_are_dropped_at_observe(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_ms")
        histogram.observe(float("nan"))
        histogram.observe(float("inf"))
        histogram.observe(3.0)
        stats = registry.snapshot().histograms["latency_ms"]
        assert stats.count == 1      # non-finite never enter the window
        assert stats.dropped == 2    # ... but the drops are counted
        assert stats.p50 == 3.0
        snapshot = registry.snapshot()
        assert snapshot.counters[
            "dropped_samples{histogram=latency_ms}"] == 2
        assert "nan" not in format_snapshot(snapshot).lower()

    def test_stages_section_rendered(self):
        from repro import obs

        with obs.enabled():
            tracer = obs.Tracer()
            tracer.record("serve.embed", 0.0, 0.010)
        registry = MetricsRegistry()
        snapshot = registry.snapshot()
        snapshot.stages = tracer.stage_stats()
        text = format_snapshot(snapshot)
        assert "stages (span timings, ms):" in text
        assert "serve.embed" in text
