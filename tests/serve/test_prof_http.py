"""The profiling/memory HTTP surface: /debug/prof and /debug/mem.

Marked ``prof`` + ``http``: every test binds an ephemeral loopback port
and skips cleanly where that is impossible.  Unlike ``/debug/flight``
these endpoints do not need diagnostics enabled — a server with
``diag_enabled=False`` still profiles and still reports memory.
"""

import json
import socket
from urllib.error import HTTPError
from urllib.request import urlopen

import pytest

from repro.queries import Entity, Projection
from repro.serve import ServeConfig, ServeRuntime

pytestmark = [pytest.mark.prof, pytest.mark.http]


@pytest.fixture(autouse=True, scope="module")
def _require_loopback_bind():
    """Skip the module when no loopback port can be bound at all."""
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
    except OSError as exc:
        pytest.skip(f"cannot bind a loopback port here: {exc}")


def distinct_queries(kg, n):
    seen, out = set(), []
    for head, rel, _ in kg:
        if (head, rel) not in seen:
            seen.add((head, rel))
            out.append(Projection(rel, Entity(head)))
        if len(out) == n:
            break
    return out


def get_json(url):
    with urlopen(url, timeout=10) as response:
        return json.loads(response.read().decode())


@pytest.fixture()
def served(model, tiny_kg):
    config = ServeConfig(max_batch_size=8, flush_timeout=0.002,
                         num_workers=1, http_port=0, plan_compile=True,
                         prof_hz=100.0)
    with ServeRuntime(model, kg=tiny_kg, config=config) as runtime:
        for query in distinct_queries(tiny_kg, 4):
            runtime.answer(query, top_k=3)
        yield runtime, runtime.http_server.url


class TestDebugProf:
    def test_json_payload_shape(self, served):
        runtime, url = served
        payload = get_json(f"{url}/debug/prof")
        assert "serve" in payload["roles"]
        merged = payload["merged"]
        assert merged["samples"] >= 0
        assert sum(merged["stacks"].values()) == merged["samples"]
        assert payload["effective_hz"] > 0.0
        # the plan-compiled request path fed the cost accounter
        assert "anchor" in payload["plan_ops"]
        assert "finalize" in payload["plan_ops"]

    def test_folded_format_is_flamegraph_input(self, served):
        _, url = served
        with urlopen(f"{url}/debug/prof?format=folded",
                     timeout=10) as response:
            assert response.headers["Content-Type"].startswith(
                "text/plain")
            body = response.read().decode()
        for line in body.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and count.isdigit()

    def test_speedscope_format_round_trips(self, served):
        _, url = served
        doc = get_json(f"{url}/debug/prof?format=speedscope")
        assert doc["$schema"].startswith("https://www.speedscope.app")
        [profile] = doc["profiles"]
        assert profile["endValue"] == sum(profile["weights"])

    def test_window_mode_returns_recent_samples_only(self, served):
        runtime, url = served
        before = runtime.prof.snapshot().samples
        payload = get_json(f"{url}/debug/prof?seconds=0.2")
        assert payload["window_seconds"] == pytest.approx(0.2)
        after = runtime.prof.snapshot().samples
        # the window is a subset of the history: it excludes everything
        # sampled before the request arrived
        window = payload["merged"]["samples"]
        assert window <= after - before + 50  # slack: passes mid-fetch
        assert after >= before  # cumulative history never shrinks

    def test_role_filter(self, served):
        _, url = served
        payload = get_json(f"{url}/debug/prof?role=serve")
        assert payload["roles"] == ["serve"]
        payload = get_json(f"{url}/debug/prof?role=nonexistent")
        assert payload["roles"] == []
        assert payload["merged"]["samples"] == 0

    def test_unknown_format_is_400(self, served):
        _, url = served
        with pytest.raises(HTTPError) as excinfo:
            urlopen(f"{url}/debug/prof?format=bogus", timeout=10)
        assert excinfo.value.code == 400

    def test_profiling_disabled_is_404(self, model, tiny_kg):
        config = ServeConfig(num_workers=1, http_port=0,
                             profiling=False)
        with ServeRuntime(model, kg=tiny_kg, config=config) as runtime:
            assert runtime.prof is None
            with pytest.raises(HTTPError) as excinfo:
                urlopen(f"{runtime.http_server.url}/debug/prof",
                        timeout=10)
            assert excinfo.value.code == 404
            # /debug/mem stays up: memory needs no sampler
            payload = get_json(f"{runtime.http_server.url}/debug/mem")
            assert payload["processes"][0]["role"] == "serve"


class TestDebugMem:
    def test_processes_caches_and_gauges(self, served):
        runtime, url = served
        payload = get_json(f"{url}/debug/mem")
        serve = payload["processes"][0]
        assert serve["role"] == "serve"
        assert serve["rss_bytes"] > 1024 * 1024
        caches = payload["caches"]
        assert {"answer_cache", "embedding_cache",
                "plan_template_cache"} <= set(caches)
        for stats in caches.values():
            assert stats["bytes"] >= 0
            assert "hits" in stats and "misses" in stats
        # served requests populated the answer cache with real entries
        assert caches["answer_cache"]["size"] > 0
        assert caches["answer_cache"]["bytes"] > 0
        # the payload refreshed the scrapeable gauges
        gauges = runtime.metrics.snapshot().gauges
        assert gauges["process_rss_bytes{role=serve}"] > 0
        assert "cache_bytes{cache=answer_cache}" in gauges

    def test_unsharded_server_reports_no_shard_plan(self, served):
        _, url = served
        payload = get_json(f"{url}/debug/mem")
        assert payload["shard_plan"] is None


class TestGatewayProfStats:
    def test_gateway_stats_surface_sampler_health(self, served):
        from repro.gateway import Gateway
        runtime, _ = served
        with Gateway(runtime) as gateway:
            stats = gateway.stats()
            assert stats["prof_effective_hz"] > 0.0
            assert stats["prof_overhead_ratio"] >= 0.0

    def test_gateway_stats_omit_prof_when_disabled(self, model, tiny_kg):
        from repro.gateway import Gateway
        config = ServeConfig(num_workers=1, profiling=False)
        with ServeRuntime(model, kg=tiny_kg, config=config) as runtime, \
                Gateway(runtime) as gateway:
            assert "prof_effective_hz" not in gateway.stats()
