"""Cache-key canonicalisation: isomorphic queries hit, distinct miss."""

from repro.queries import (Difference, Entity, Intersection, Negation,
                           Projection, Union, execute, structure_signature)
from repro.serve import batch_key, cache_key, canonicalize, serialize


def _i(*ops):
    return Intersection(tuple(ops))


def _u(*ops):
    return Union(tuple(ops))


class TestCacheKey:
    def test_intersection_operand_order_is_irrelevant(self):
        a = _i(Projection(0, Entity(1)), Projection(1, Entity(2)))
        b = _i(Projection(1, Entity(2)), Projection(0, Entity(1)))
        assert cache_key(a) == cache_key(b)

    def test_union_operand_order_is_irrelevant(self):
        a = _u(Entity(1), Entity(2), Entity(3))
        b = _u(Entity(3), Entity(1), Entity(2))
        assert cache_key(a) == cache_key(b)

    def test_nested_reordering_matches(self):
        a = Projection(5, _i(Entity(1), _u(Entity(2), Entity(3))))
        b = Projection(5, _i(_u(Entity(3), Entity(2)), Entity(1)))
        assert cache_key(a) == cache_key(b)

    def test_distinct_anchors_miss(self):
        a = Projection(0, Entity(1))
        b = Projection(0, Entity(2))
        assert cache_key(a) != cache_key(b)

    def test_distinct_relations_miss(self):
        assert cache_key(Projection(0, Entity(1))) \
            != cache_key(Projection(1, Entity(1)))

    def test_difference_is_not_commutative(self):
        a = Difference((Entity(1), Entity(2)))
        b = Difference((Entity(2), Entity(1)))
        assert cache_key(a) != cache_key(b)

    def test_difference_subtrahends_commute(self):
        a = Difference((Entity(1), Entity(2), Entity(3)))
        b = Difference((Entity(1), Entity(3), Entity(2)))
        assert cache_key(a) == cache_key(b)

    def test_negation_passthrough(self):
        a = Negation(_i(Entity(1), Entity(2)))
        b = Negation(_i(Entity(2), Entity(1)))
        assert cache_key(a) == cache_key(b)


class TestCanonicalize:
    def test_preserves_answers(self, tiny_kg):
        query = _i(Projection(0, Entity(0)), Projection(1, Entity(1)))
        assert execute(canonicalize(query), tiny_kg) \
            == execute(query, tiny_kg)

    def test_idempotent(self):
        query = _i(Projection(1, Entity(2)), Projection(0, Entity(1)))
        once = canonicalize(query)
        assert canonicalize(once) == once

    def test_serialize_is_deterministic(self):
        query = Difference((Projection(0, Entity(1)), Entity(2)))
        assert serialize(query) == serialize(query)
        assert "P0" in serialize(query)


class TestBatchKey:
    def test_same_template_different_ids_share_group(self):
        a = _i(Projection(0, Entity(1)), Projection(1, Entity(2)))
        b = _i(Projection(7, Entity(9)), Projection(3, Entity(4)))
        assert batch_key(a) == batch_key(b)
        assert cache_key(a) != cache_key(b)

    def test_different_shapes_do_not_share_group(self):
        assert batch_key(Projection(0, Entity(1))) \
            != batch_key(Projection(0, Projection(1, Entity(1))))

    def test_signature_strips_ids(self):
        assert structure_signature(Projection(3, Entity(9))) == "P(E)"
