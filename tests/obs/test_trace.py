"""Tracer core: nesting, cross-thread attachment, enable/disable."""

import threading

import pytest

from repro import obs
from repro.obs.trace import _NULL_CONTEXT

pytestmark = pytest.mark.obs


@pytest.fixture
def tracer():
    with obs.enabled():
        yield obs.Tracer()


class TestNesting:
    def test_spans_nest_in_thread(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner", detail=1):
                pass
        outer = next(s for s in tracer.finished() if s.name == "outer")
        inner = next(s for s in tracer.finished() if s.name == "inner")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.attrs == {"detail": 1}
        assert 0.0 <= inner.duration <= outer.duration

    def test_siblings_share_parent(self, tracer):
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        spans = {s.name: s for s in tracer.finished()}
        assert spans["a"].parent_id == spans["root"].span_id
        assert spans["b"].parent_id == spans["root"].span_id

    def test_current_tracks_stack(self, tracer):
        assert tracer.current() is None
        with tracer.span("x") as span:
            assert tracer.current() is span
        assert tracer.current() is None

    def test_exception_still_closes(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("broken"):
                raise ValueError("boom")
        [span] = tracer.finished()
        assert span.name == "broken" and span.end is not None
        assert tracer.current() is None


class TestCrossThread:
    def test_activate_parents_under_root(self, tracer):
        root = tracer.start_span("request")
        seen = []

        def worker():
            with tracer.activate(root):
                with tracer.span("stage") as span:
                    seen.append(span)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        tracer.end_span(root)
        assert seen[0].parent_id == root.span_id
        assert seen[0].thread != root.thread

    def test_record_pretimed_interval(self, tracer):
        root = tracer.start_span("request")
        span = tracer.record("embed", 1.0, 1.5, parent=root, batch=4)
        tracer.end_span(root)
        assert span.parent_id == root.span_id
        assert span.duration == pytest.approx(0.5)
        assert tracer.stage_stats()["embed"].total_ms == pytest.approx(500.0)

    def test_concurrent_span_recording_is_safe(self, tracer):
        def hammer():
            for _ in range(200):
                with tracer.span("work"):
                    pass

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert tracer.stage_stats()["work"].count == 800


class TestEnabledFlag:
    def test_disabled_span_is_shared_null_context(self):
        tracer = obs.Tracer()
        assert not obs.is_enabled()
        assert tracer.span("x") is _NULL_CONTEXT
        with tracer.span("x") as span:
            assert span is None
        assert tracer.finished() == []

    def test_disabled_start_span_returns_none(self):
        tracer = obs.Tracer()
        root = tracer.start_span("request")
        assert root is None
        tracer.end_span(root)  # tolerated
        with tracer.activate(root) as active:
            assert active is None
        assert tracer.record("x", 0.0, 1.0, parent=root) is None

    def test_enable_disable_roundtrip(self):
        assert not obs.is_enabled()
        obs.enable()
        try:
            assert obs.is_enabled()
        finally:
            obs.disable()
        assert not obs.is_enabled()

    def test_enabled_scope_restores(self):
        with obs.enabled():
            assert obs.is_enabled()
            with obs.enabled(False):
                assert not obs.is_enabled()
            assert obs.is_enabled()
        assert not obs.is_enabled()


class TestAggregation:
    def test_stage_stats(self, tracer):
        tracer.record("s", 0.0, 0.010)
        tracer.record("s", 0.0, 0.030)
        stats = tracer.stage_stats()["s"]
        assert stats.count == 2
        assert stats.total_ms == pytest.approx(40.0)
        assert stats.mean_ms == pytest.approx(20.0)
        assert stats.max_ms == pytest.approx(30.0)

    def test_reset_clears(self, tracer):
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.finished() == []
        assert tracer.stage_stats() == {}

    def test_ring_buffer_bounds_memory(self):
        with obs.enabled():
            tracer = obs.Tracer(max_spans=10)
            for _ in range(50):
                with tracer.span("x"):
                    pass
        assert len(tracer.finished()) == 10
        assert tracer.stage_stats()["x"].count == 50  # lifetime aggregate

    def test_set_tracer_swaps_default(self):
        fresh = obs.Tracer()
        previous = obs.set_tracer(fresh)
        try:
            assert obs.get_tracer() is fresh
        finally:
            obs.set_tracer(previous)
        assert obs.get_tracer() is previous
