"""Training telemetry: callback events, sinks, history timing."""

import io
import json

import numpy as np
import pytest

from repro.config import ModelConfig, TrainConfig
from repro.core import HalkModel, Trainer
from repro.kg import KnowledgeGraph
from repro.obs import (ConsoleLogger, EpochStats, JsonlTelemetry,
                       MetricsCallback, TrainerCallback)
from repro.queries import Entity, GroundedQuery, Projection, QueryWorkload
from repro.serve.metrics import MetricsRegistry

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def kg() -> KnowledgeGraph:
    rng = np.random.default_rng(1)
    triples = [(int(rng.integers(15)), int(rng.integers(2)),
                int(rng.integers(15))) for _ in range(40)]
    return KnowledgeGraph(15, 2, triples)


@pytest.fixture
def workload(kg) -> QueryWorkload:
    workload = QueryWorkload()
    for head, rel, _tail in list(kg)[:10]:
        query = Projection(rel, Entity(head))
        answers = kg.targets(head, rel)
        workload.add(GroundedQuery("1p", query, frozenset(answers),
                                   frozenset()))
    return workload


@pytest.fixture
def model(kg) -> HalkModel:
    return HalkModel(kg, ModelConfig(embedding_dim=6, hidden_dim=12, seed=0))


class Recorder(TrainerCallback):
    def __init__(self):
        self.begins = 0
        self.epochs: list[EpochStats] = []
        self.ends = 0
        self.closed = False

    def on_train_begin(self, trainer):
        self.begins += 1

    def on_epoch_end(self, trainer, stats):
        self.epochs.append(stats)

    def on_train_end(self, trainer, history):
        self.ends += 1

    def close(self):
        self.closed = True


def _config(epochs: int = 2) -> TrainConfig:
    return TrainConfig(epochs=epochs, batch_size=8, num_negatives=4)


class TestCallbackEvents:
    def test_event_sequence_and_stats(self, model, workload):
        recorder = Recorder()
        Trainer(model, workload, _config(3), callbacks=[recorder]).train()
        assert recorder.begins == 1 and recorder.ends == 1
        assert [s.epoch for s in recorder.epochs] == [1, 2, 3]
        for stats in recorder.epochs:
            assert stats.epochs == 3
            assert np.isfinite(stats.loss)
            assert stats.grad_norm > 0.0
            assert stats.seconds > 0.0
            assert stats.samples == len(workload["1p"])
            assert stats.steps >= 1
            assert stats.samples_per_sec > 0.0

    def test_operator_seconds_collected(self, model, workload):
        recorder = Recorder()
        Trainer(model, workload, _config(1), callbacks=[recorder]).train()
        operator_seconds = recorder.epochs[0].operator_seconds
        assert operator_seconds, "expected per-module timings"
        assert all(v >= 0.0 for v in operator_seconds.values())

    def test_no_callbacks_skips_collection(self, model, workload):
        trainer = Trainer(model, workload, _config(1))
        history = trainer.train()
        assert len(trainer.callbacks) == 0
        assert len(history.epoch_seconds) == 1
        assert history.epoch_seconds[0] > 0.0

    def test_history_epoch_seconds_always_recorded(self, model, workload):
        history = Trainer(model, workload, _config(3),
                          callbacks=[Recorder()]).train()
        assert len(history.epoch_seconds) == 3
        assert sum(history.epoch_seconds) <= history.seconds


class TestConsoleLogger:
    def test_prints_legacy_format(self, model, workload, capsys):
        config = TrainConfig(epochs=2, batch_size=8, num_negatives=4,
                             log_every=1)
        Trainer(model, workload, config).train()
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith(f"[{model.name}] epoch 1/2 loss ")

    def test_log_every_filters(self, model, workload, capsys):
        config = TrainConfig(epochs=4, batch_size=8, num_negatives=4,
                             log_every=2)
        Trainer(model, workload, config).train()
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert "epoch 2/4" in lines[0] and "epoch 4/4" in lines[1]

    def test_custom_stream(self, model, workload):
        stream = io.StringIO()
        Trainer(model, workload, _config(1),
                callbacks=[ConsoleLogger(1, stream=stream)]).train()
        assert "epoch 1/1 loss" in stream.getvalue()


class TestJsonlTelemetry:
    def test_event_stream(self, model, workload):
        buffer = io.StringIO()
        telemetry = JsonlTelemetry(buffer, clock=lambda: 123.0)
        Trainer(model, workload, _config(2), callbacks=[telemetry]).train()
        events = [json.loads(line) for line in
                  buffer.getvalue().strip().splitlines()]
        assert [e["event"] for e in events] == [
            "train_begin", "epoch", "epoch", "train_end"]
        begin, first_epoch, _, end = events
        assert begin["model"] == model.name
        assert begin["epochs"] == 2
        assert first_epoch["epoch"] == 1
        assert np.isfinite(first_epoch["loss"])
        assert first_epoch["grad_norm"] > 0.0
        assert end["final_loss"] == pytest.approx(events[2]["loss"])

    def test_file_sink_and_close(self, model, workload, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        telemetry = JsonlTelemetry(path)
        trainer = Trainer(model, workload, _config(1), callbacks=[telemetry])
        trainer.train()
        trainer.callbacks.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3


class TestMetricsCallback:
    def test_folds_into_registry(self, model, workload):
        registry = MetricsRegistry()
        Trainer(model, workload, _config(2),
                callbacks=[MetricsCallback(registry)]).train()
        assert registry.counter("train_epochs").value == 2
        assert registry.counter("train_samples").value == 2 * len(
            workload["1p"])
        assert registry.gauge("train_loss").value is not None
        assert registry.histogram("train_epoch_seconds").stats().count == 2
