"""Exporters: Chrome trace events, JSONL writer, ASCII span tree."""

import io
import json

import pytest

from repro import obs

pytestmark = pytest.mark.obs


@pytest.fixture
def spans():
    with obs.enabled():
        tracer = obs.Tracer()
        with tracer.span("request", structure="3p"):
            with tracer.span("embed"):
                pass
            with tracer.span("rank"):
                pass
        return tracer.finished()


class TestChromeTrace:
    def test_events_are_valid(self, spans):
        events = obs.chrome_trace_events(spans)
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 3
        assert len(meta) == 2  # one thread track + its process label
        import os
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["pid"] == os.getpid() and event["tid"] >= 1
            assert "span_id" in event["args"]
        names = {e["name"] for e in complete}
        assert names == {"request", "embed", "rank"}

    def test_timestamps_relative_to_origin(self, spans):
        events = obs.chrome_trace_events(spans)
        assert min(e["ts"] for e in events if e["ph"] == "X") == 0.0

    def test_attrs_become_args(self, spans):
        events = obs.chrome_trace_events(spans)
        request = next(e for e in events if e["name"] == "request")
        assert request["args"]["structure"] == "3p"

    def test_write_file_roundtrips(self, spans, tmp_path):
        path = tmp_path / "trace.json"
        count = obs.write_chrome_trace(path, spans)
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count == 5
        assert payload["displayTimeUnit"] == "ms"

    def test_empty_spans(self, tmp_path):
        assert obs.chrome_trace_events([]) == []
        assert obs.write_chrome_trace(tmp_path / "t.json", []) == 0


class TestJsonlWriter:
    def test_writes_one_json_per_line(self):
        buffer = io.StringIO()
        writer = obs.JsonlWriter(buffer)
        writer.write({"event": "a", "value": 1})
        writer.write({"event": "b", "nested": {"x": [1, 2]}})
        lines = buffer.getvalue().strip().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["a", "b"]
        assert writer.count == 2

    def test_file_path_and_context_manager(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with obs.JsonlWriter(path) as writer:
            writer.write({"k": "v"})
        assert json.loads(path.read_text())["k"] == "v"

    def test_non_jsonable_values_coerced(self):
        buffer = io.StringIO()
        obs.JsonlWriter(buffer).write({"obj": object()})
        assert "object object" in json.loads(buffer.getvalue())["obj"]


class TestSpanTree:
    def test_tree_renders_nesting(self, spans):
        text = obs.format_span_tree(spans)
        lines = text.splitlines()
        assert lines[0].startswith("request")
        assert lines[1].startswith("  embed")
        assert lines[2].startswith("  rank")
        assert "ms" in lines[0]
        assert "structure=3p" in lines[0]

    def test_orphans_promoted_to_roots(self):
        with obs.enabled():
            tracer = obs.Tracer()
            root = tracer.start_span("dropped")
            tracer.record("child", 0.0, 0.001, parent=root)
        text = obs.format_span_tree(tracer.finished())
        assert text.startswith("child")  # parent never finished

    def test_span_to_dict(self, spans):
        record = obs.span_to_dict(spans[-1])
        assert record["name"] == "request"
        assert record["duration_ms"] >= 0.0
        assert record["attrs"] == {"structure": "3p"}
