"""Tier-1 guarantee: disabled tracing costs <5% of a served query.

The serve runtime touches the tracer a bounded number of times per
request (root span, canonicalise, cache lookup, queue, embed, distance,
rank, plus slack).  With tracing disabled every touch is a flag check
returning a shared null context, so the bound we enforce is

    span_ops_per_request * disabled_cost_per_span  <  5% * query_time

measured best-of-repeats on the same machine, same process.
"""

import time

import numpy as np
import pytest

from repro import obs
from repro.config import ModelConfig
from repro.core import HalkModel
from repro.kg import KnowledgeGraph
from repro.queries import Entity, Projection

pytestmark = pytest.mark.obs

#: generous ceiling on tracer touches per served request (runtime uses ~8)
SPAN_OPS_PER_REQUEST = 32

#: ceiling on telemetry touches per *sharded* ranking request, summed
#: over parent and workers: span ops (shard.dispatch/gather/merge plus
#: the per-worker worker.handle/score/topk checks) and metric ops (the
#: per-shard counter inc + histogram observe, the delta flush, the
#: parent merge).  Real counts are ~6 spans and ~8 metric ops for 2
#: shards; the ceilings leave >2x slack.
DIST_SPAN_OPS_PER_REQUEST = 32
DIST_METRIC_OPS_PER_REQUEST = 32


def _best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        best = min(best, fn())
    return best


def _disabled_span_cost(tracer: obs.Tracer, calls: int = 2000) -> float:
    """Best-of per-call seconds of tracer.span() while disabled."""

    def once() -> float:
        start = time.perf_counter()
        for _ in range(calls):
            with tracer.span("x"):
                pass
        return (time.perf_counter() - start) / calls

    return _best_of(once)


class TestDisabledOverhead:
    def test_disabled_mode_overhead_under_5_percent(self):
        assert not obs.is_enabled()
        rng = np.random.default_rng(0)
        kg = KnowledgeGraph(40, 3, [
            (int(rng.integers(40)), int(rng.integers(3)),
             int(rng.integers(40))) for _ in range(120)])
        model = HalkModel(kg, ModelConfig(embedding_dim=8, hidden_dim=16,
                                          seed=0))
        head, rel, _ = next(iter(kg))
        query = Projection(rel, Entity(head))

        model.answer_batch([query])  # warm caches / first-call overheads

        def one_query() -> float:
            start = time.perf_counter()
            model.answer_batch([query])
            return time.perf_counter() - start

        query_seconds = _best_of(one_query)
        span_seconds = _disabled_span_cost(obs.get_tracer())
        overhead = SPAN_OPS_PER_REQUEST * span_seconds
        assert overhead < 0.05 * query_seconds, (
            f"disabled tracing would cost {1e6 * overhead:.1f}us per "
            f"request vs {1e6 * query_seconds:.1f}us query time")

    def test_disabled_span_returns_shared_context(self):
        tracer = obs.Tracer()
        contexts = {id(tracer.span("a")) for _ in range(10)}
        assert len(contexts) == 1  # no per-call allocation


def _metric_op_cost(calls: int = 2000) -> float:
    """Best-of per-call seconds of the worker-side metric hot path
    (labelled counter inc + histogram observe on a delta registry)."""
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry(track_deltas=True)
    counter = registry.counter("rank_requests", shard=0)
    histogram = registry.histogram("rank_block_ms", shard=0)

    def once() -> float:
        start = time.perf_counter()
        for _ in range(calls):
            counter.inc()
            histogram.observe(1.0)
        registry.flush_delta()  # keep the pending list bounded
        return (time.perf_counter() - start) / calls

    return _best_of(once)


class TestDisabledOverheadSharded:
    def test_sharded_ranking_overhead_under_5_percent(self):
        """The dist-path telemetry (piggybacked deltas, span checks)
        must stay under 5% of a sharded ranking request with tracing
        disabled.  Same methodology as the serve-path bound above:
        measured per-op cost times a generous op ceiling."""
        from repro.dist import ShardedRanker, dist_available

        if not dist_available():
            pytest.skip("shared memory unavailable on this platform")
        assert not obs.is_enabled()
        rng = np.random.default_rng(1)
        n = 101
        kg = KnowledgeGraph(n, 3, [
            (int(rng.integers(n)), int(rng.integers(3)),
             int(rng.integers(n))) for _ in range(250)])
        model = HalkModel(kg, ModelConfig(embedding_dim=8, hidden_dim=16,
                                          seed=0))
        queries = [Projection(rel, Entity(head))
                   for head, rel, _ in list(kg)[:4]]
        embedding = model.embed_batch(queries)
        ranker = ShardedRanker.for_model(model, 2)
        if ranker is None:
            pytest.skip("model/platform does not support sharding")
        try:
            ranker.topk(embedding, 5)  # warm the pool

            def one_request() -> float:
                start = time.perf_counter()
                ranker.topk(embedding, 5)
                return time.perf_counter() - start

            query_seconds = _best_of(one_request)
        finally:
            ranker.close()
        span_seconds = _disabled_span_cost(obs.get_tracer())
        metric_seconds = _metric_op_cost()
        overhead = (DIST_SPAN_OPS_PER_REQUEST * span_seconds
                    + DIST_METRIC_OPS_PER_REQUEST * metric_seconds)
        assert overhead < 0.05 * query_seconds, (
            f"disabled telemetry would cost {1e6 * overhead:.1f}us per "
            f"sharded request vs {1e6 * query_seconds:.1f}us request "
            f"time")
