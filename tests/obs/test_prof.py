"""repro.obs.prof: the continuous sampling profiler and its tools.

Covers the ISSUE 10 acceptance surface that does not need a serving
runtime: deterministic sampling passes, the overhead-budget
down-sampling loop, delta flushing and the parent-side store,
order-independent count-conserving merges (property-tested), the two
flame-graph export formats, self-time-share diff attribution — including
a *real* injected slowdown being attributed to the slowed frame — the
dual-profiler warning, and the memory observability helpers.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.obs import prof
from repro.obs.prof import (Profile, ProfileStore, SamplingProfiler,
                            diff_plan_ops, diff_profiles, estimate_nbytes,
                            format_diff, format_top, load_profile_payload,
                            merge_profiles, process_rss_bytes,
                            sampler_active, self_time_shares, to_folded,
                            to_speedscope, window_profiles)

pytestmark = [pytest.mark.obs, pytest.mark.prof]


@pytest.fixture()
def parked_thread():
    """A named thread parked in a recognisable function."""
    release = threading.Event()

    def _parked_in_test_prof(event):
        event.wait(10.0)

    thread = threading.Thread(target=_parked_in_test_prof,
                              args=(release,), name="parked-worker")
    thread.start()
    yield thread
    release.set()
    thread.join()


class TestSampling:
    def test_sample_once_captures_parked_thread(self, parked_thread):
        sampler = SamplingProfiler(hz=50, role="test")
        count = sampler.sample_once()
        assert count >= 1  # at least this thread and the parked one
        profile = sampler.snapshot()
        assert profile.samples == count
        parked = [stack for stack in profile.stacks
                  if stack.startswith("parked-worker;")]
        assert parked, f"parked thread missing from {list(profile.stacks)}"
        # leaf frame is the function the thread is parked in (Event.wait
        # bottoms out in a C call, so the deepest *Python* frame wins)
        assert any("_parked_in_test_prof" in stack or "threading.py" in
                   stack for stack in parked)

    def test_sampler_skips_its_own_stack(self):
        sampler = SamplingProfiler(hz=50, role="test")
        sampler.sample_once()
        own = [stack for stack in sampler.snapshot().stacks
               if "sample_once" in stack]
        assert not own  # calling thread == sampling thread here

    def test_start_stop_thread_lifecycle(self):
        sampler = SamplingProfiler(hz=200, role="test")
        assert not sampler.running
        assert not sampler_active()
        with sampler:
            assert sampler.running
            assert sampler_active()
            time.sleep(0.1)
        assert not sampler.running
        assert not sampler_active()
        assert sampler.snapshot().samples > 0
        assert sampler.duration_s() > 0.05

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)
        with pytest.raises(ValueError):
            SamplingProfiler(hz=10, overhead_budget=0.0)


class TestOverheadBudget:
    def test_expensive_pass_halves_rate(self):
        sampler = SamplingProfiler(hz=100, role="test",
                                   overhead_budget=0.02, min_hz=1.0)
        assert sampler.effective_hz == pytest.approx(100.0)
        # a pass costing a full second blows any budget immediately
        sampler._account(1.0)
        assert sampler.downsamples == 1
        assert sampler.effective_hz == pytest.approx(50.0)
        assert sampler.overhead_ratio > sampler.overhead_budget

    def test_downsampling_floors_at_min_hz(self):
        sampler = SamplingProfiler(hz=8, role="test",
                                   overhead_budget=0.02, min_hz=2.0)
        for _ in range(20):
            sampler._account(1.0)
        # 8 -> 4 -> 2 and no further: halving again would go below min_hz
        assert sampler.effective_hz == pytest.approx(2.0)
        assert sampler.downsamples == 2

    def test_cheap_passes_keep_full_rate(self):
        sampler = SamplingProfiler(hz=100, role="test",
                                   overhead_budget=0.02)
        for _ in range(50):
            sampler._account(0.00001)  # 0.1% of the 10ms interval
        assert sampler.downsamples == 0
        assert sampler.effective_hz == pytest.approx(100.0)

    def test_budget_metrics_exported(self, parked_thread):
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        sampler = SamplingProfiler(hz=100, role="r1", registry=registry)
        sampler.sample_once()  # parked_thread guarantees >=1 sample
        sampler._account(1.0)
        snap = registry.snapshot()
        assert snap.counters.get("prof_samples{role=r1}", 0) >= 1
        assert snap.counters["prof_downsamples{role=r1}"] == 1
        assert snap.gauges["prof_effective_hz{role=r1}"] == \
            pytest.approx(50.0)
        assert snap.gauges["prof_overhead_ratio{role=r1}"] > 0.02


class TestDeltaFlush:
    def test_flush_drains_pending_not_cumulative(self, parked_thread):
        sampler = SamplingProfiler(hz=50, role="w")
        assert sampler.flush_delta() is None  # nothing yet
        sampler.sample_once()
        delta = sampler.flush_delta()
        assert delta is not None
        assert delta.samples == sampler.snapshot().samples
        assert sampler.flush_delta() is None  # drained
        sampler.sample_once()
        second = sampler.flush_delta()
        assert second is not None
        # cumulative snapshot keeps both passes
        assert sampler.snapshot().samples == delta.samples + second.samples

    def test_store_accumulates_by_role_and_pid(self):
        store = ProfileStore()
        store.merge_delta(Profile({"t;a": 2}, 2, 0.1, 50.0, 111, "shard0"))
        store.merge_delta(Profile({"t;a": 1, "t;b": 3}, 4, 0.1, 50.0,
                                  111, "shard0"))
        # a respawned worker (same role, new pid) gets its own entry
        store.merge_delta(Profile({"t;a": 5}, 5, 0.1, 50.0, 222, "shard0"))
        assert len(store) == 2
        by_pid = {p.pid: p for p in store.snapshot()}
        assert by_pid[111].stacks == {"t;a": 3, "t;b": 3}
        assert by_pid[111].samples == 6
        assert by_pid[222].samples == 5

    def test_store_snapshot_is_a_copy(self):
        store = ProfileStore()
        store.merge_delta(Profile({"t;a": 1}, 1, 0.1, 50.0, 1, "w"))
        snap = store.snapshot()[0]
        snap.stacks["t;a"] = 999
        assert store.snapshot()[0].stacks["t;a"] == 1


class TestMerge:
    def test_merge_tags_roles_and_conserves_counts(self):
        merged = merge_profiles([
            Profile({"main;f": 3}, 3, 1.0, 50.0, 10, "serve"),
            Profile({"main;g": 2}, 2, 0.5, 25.0, 20, "shard0"),
            None,  # dead worker slots are skipped
        ])
        assert merged.samples == 5
        assert merged.stacks == {"serve@10;main;f": 3,
                                 "shard0@20;main;g": 2}
        assert merged.hz == 50.0
        assert merged.duration_s == 1.0

    def test_merge_untagged_folds_same_stacks(self):
        merged = merge_profiles([
            Profile({"main;f": 3}, 3, 1.0, 50.0, 10, "a"),
            Profile({"main;f": 2}, 2, 1.0, 50.0, 20, "b"),
        ], tag=False)
        assert merged.stacks == {"main;f": 5}

    def test_merge_property_order_independent_and_conserving(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings, strategies as st

        stacks = st.dictionaries(
            st.text(alphabet="abcxyz;", min_size=1, max_size=12),
            st.integers(min_value=1, max_value=10 ** 6), max_size=6)
        profiles = st.lists(st.builds(
            lambda s, pid, role: Profile(
                s, samples=sum(s.values()), duration_s=0.0, hz=1.0,
                pid=pid, role=role),
            stacks, st.integers(min_value=1, max_value=5),
            st.sampled_from(["serve", "shard0", "shard1"])), max_size=5)

        @settings(deadline=None, max_examples=50)
        @given(profiles=profiles)
        def check(profiles):
            merged = merge_profiles(profiles)
            reversed_merge = merge_profiles(list(reversed(profiles)))
            # count conservation: merged total == sum of inputs
            assert merged.samples == sum(p.samples for p in profiles)
            assert sum(merged.stacks.values()) == \
                sum(sum(p.stacks.values()) for p in profiles)
            # order independence
            assert merged.stacks == reversed_merge.stacks
            assert merged.samples == reversed_merge.samples

        check()


class TestWindow:
    def test_window_subtracts_matched_processes(self):
        base = [Profile({"t;a": 5, "t;b": 1}, 6, 1.0, 50.0, 1, "serve")]
        current = [Profile({"t;a": 8, "t;b": 1}, 9, 2.0, 50.0, 1, "serve"),
                   Profile({"t;c": 4}, 4, 0.5, 50.0, 2, "shard0")]
        deltas = window_profiles(base, current)
        by_role = {p.role: p for p in deltas}
        # matched (role, pid): only growth survives
        assert by_role["serve"].stacks == {"t;a": 3}
        assert by_role["serve"].samples == 3
        # spawned mid-window: kept whole
        assert by_role["shard0"].stacks == {"t;c": 4}

    def test_dead_process_dropped_and_subtract_clamps(self):
        base = [Profile({"t;a": 5}, 5, 1.0, 50.0, 1, "serve"),
                Profile({"t;z": 9}, 9, 1.0, 50.0, 7, "shard0")]
        current = [Profile({"t;a": 4}, 4, 0.5, 50.0, 1, "serve")]
        deltas = window_profiles(base, current)
        assert len(deltas) == 1  # shard0 died mid-window
        assert deltas[0].stacks == {}  # counts never go negative
        assert deltas[0].samples == 0


class TestExporters:
    def test_folded_output_sorted_and_parseable(self):
        profile = Profile({"main;b;c": 2, "main;a": 7}, 9, 1.0, 50.0,
                          1, "t")
        lines = to_folded(profile).splitlines()
        assert lines == ["main;a 7", "main;b;c 2"]

    def test_speedscope_schema_and_weights(self):
        profile = Profile({"main;f;g": 3, "main;f": 2}, 5, 1.0, 50.0,
                          1, "t")
        doc = to_speedscope(profile)
        assert doc["$schema"].startswith("https://www.speedscope.app")
        [sampled] = doc["profiles"]
        assert sampled["type"] == "sampled"
        assert sampled["endValue"] == sum(sampled["weights"]) == 5
        frames = doc["shared"]["frames"]
        names = [f["name"] for f in frames]
        assert set(names) == {"main", "f", "g"}
        # every sample row indexes into the shared frame table
        for row in sampled["samples"]:
            assert all(0 <= index < len(frames) for index in row)
        # round-trip one stack through the indices
        decoded = {";".join(names[i] for i in row): w
                   for row, w in zip(sampled["samples"],
                                     sampled["weights"])}
        assert decoded == profile.stacks

    def test_profile_dict_round_trip(self):
        profile = Profile({"main;f": 3}, 3, 1.25, 67.0, 42, "serve",
                          0.01)
        clone = Profile.from_dict(
            json.loads(json.dumps(profile.to_dict())))
        assert clone == profile

    def test_load_profile_payload_both_shapes(self, tmp_path):
        profile = Profile({"main;f": 3}, 3, 1.0, 50.0, 1, "serve")
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(profile.to_dict()))
        loaded, ops = load_profile_payload(bare)
        assert loaded == profile and ops == {}
        full = tmp_path / "full.json"
        full.write_text(json.dumps({
            "merged": profile.to_dict(),
            "plan_ops": {"project": 1.5, "finalize": 0.5}}))
        loaded, ops = load_profile_payload(full)
        assert loaded == profile
        assert ops == {"project": 1.5, "finalize": 0.5}
        junk = tmp_path / "junk.json"
        junk.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            load_profile_payload(junk)


class TestAttribution:
    def test_self_time_shares_use_leaf_frames(self):
        profile = Profile({"main;outer;hot": 6, "main;outer": 2,
                           "main;cold": 2}, 10, 1.0, 50.0, 1, "t")
        shares = self_time_shares(profile)
        assert shares == {"hot": 0.6, "outer": 0.2, "cold": 0.2}
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_diff_orders_by_share_movement(self):
        base = Profile({"m;a;b": 50, "m;a;c": 50}, 100, 1.0, 50.0, 1, "t")
        latest = Profile({"m;a;b": 80, "m;a;c": 20}, 100, 1.0, 50.0,
                         1, "t")
        rows = diff_profiles(base, latest)
        assert rows[0]["frame"] == "b"  # ties break alphabetically
        assert rows[0]["delta_share"] == pytest.approx(0.3)
        assert rows[1]["frame"] == "c"
        assert rows[1]["delta_share"] == pytest.approx(-0.3)

    def test_uniform_slowdown_yields_flat_shares(self):
        """The design point of share-based attribution: scaling every
        count equally (a uniformly slower machine) moves nothing."""
        base = Profile({"m;a": 30, "m;b": 70}, 100, 1.0, 50.0, 1, "t")
        latest = Profile({"m;a": 90, "m;b": 210}, 300, 3.0, 50.0, 1, "t")
        for row in diff_profiles(base, latest):
            assert row["delta_share"] == pytest.approx(0.0)

    def test_plan_op_diff_normalises_to_shares(self):
        rows = diff_plan_ops(
            {"project": 1.0, "anchor": 1.0, "finalize": 2.0},
            {"project": 6.0, "anchor": 1.0, "finalize": 1.0})
        assert rows[0]["plan_op"] == "project"
        assert rows[0]["delta_share"] == pytest.approx(0.75 - 0.25)

    def test_format_diff_and_top_render_tables(self):
        base = Profile({"m;a": 1, "m;b": 3}, 4, 1.0, 50.0, 1, "t")
        latest = Profile({"m;a": 3, "m;b": 1}, 4, 1.0, 50.0, 1, "t")
        table = format_diff(diff_profiles(base, latest), title="frames")
        assert "frames" in table and "baseline" in table
        assert "pp" in table  # deltas are percentage points
        top = format_top(latest)
        assert "b" in top and "75.0%" in top
        assert format_diff([]) == "(no samples on either side)"
        assert "no samples" in format_top(Profile())

    def test_injected_slowdown_attributed_to_slowed_frame(self):
        """Acceptance: slow one stage of a two-stage workload down and
        the top positive share-delta riser must name that stage."""

        def _stage_fast(deadline):
            while time.perf_counter() < deadline:
                pass

        def _stage_slowed(deadline):
            while time.perf_counter() < deadline:
                pass

        def _profiled_run(fast_ms, slow_ms, duration=0.35):
            stop = threading.Event()

            def work():
                while not stop.is_set():
                    _stage_fast(time.perf_counter() + fast_ms / 1000.0)
                    _stage_slowed(time.perf_counter() + slow_ms / 1000.0)

            worker = threading.Thread(target=work, name="workload")
            sampler = SamplingProfiler(hz=400, role="bench")
            with sampler:
                worker.start()
                time.sleep(duration)
                stop.set()
                worker.join()
            return sampler.snapshot()

        baseline = _profiled_run(2.0, 2.0)
        latest = _profiled_run(2.0, 8.0)  # inject a 4x slowdown
        assert baseline.samples > 20 and latest.samples > 20
        riser = max(diff_profiles(baseline, latest, limit=50),
                    key=lambda row: row["delta_share"])
        assert "_stage_slowed" in riser["frame"], (
            f"slowdown attributed to {riser['frame']!r}:\n"
            + format_diff(diff_profiles(baseline, latest)))


class TestDualProfilerWarning:
    @pytest.fixture(autouse=True)
    def _reset_warned(self):
        was = prof._dual_warned
        prof._dual_warned = False
        yield
        prof._dual_warned = was

    def test_instrumenting_profiler_warns_when_sampler_running(self):
        from repro.obs.profiler import Profiler
        sampler = SamplingProfiler(hz=10, role="test").start()
        try:
            with pytest.warns(RuntimeWarning, match="both active"):
                with Profiler():
                    pass
        finally:
            sampler.stop()

    def test_sampler_warns_when_instrumenting_profiler_active(self):
        from repro.obs.profiler import Profiler
        with Profiler():
            sampler = SamplingProfiler(hz=10, role="test")
            with pytest.warns(RuntimeWarning, match="both active"):
                sampler.start()
            sampler.stop()

    def test_warning_fires_once_per_process(self):
        from repro.obs.profiler import Profiler
        sampler = SamplingProfiler(hz=10, role="test").start()
        try:
            with pytest.warns(RuntimeWarning):
                with Profiler():
                    pass
            with warnings_none():
                with Profiler():
                    pass
        finally:
            sampler.stop()


class warnings_none:
    """Context asserting no warnings were raised inside it."""

    def __enter__(self):
        import warnings
        self._catcher = warnings.catch_warnings(record=True)
        self._records = self._catcher.__enter__()
        import warnings as w
        w.simplefilter("always")
        return self

    def __exit__(self, *exc_info):
        self._catcher.__exit__(*exc_info)
        assert not self._records, (
            f"unexpected warnings: {[str(r.message) for r in self._records]}")


class TestMemoryHelpers:
    def test_own_rss_is_positive(self):
        assert process_rss_bytes() > 1024 * 1024  # a python process

    def test_unknown_pid_reports_zero(self):
        assert process_rss_bytes(2 ** 30) == 0

    def test_estimate_nbytes_ndarray_exact(self):
        array = np.zeros((4, 4), dtype=np.float64)
        assert estimate_nbytes(array) == array.nbytes == 128

    def test_estimate_nbytes_tensor_via_data(self):
        from repro.nn import Tensor
        tensor = Tensor(np.zeros((8,)))
        assert estimate_nbytes(tensor) == tensor.data.nbytes == 64

    def test_estimate_nbytes_containers_recurse(self):
        arrays = [np.zeros(16, dtype=np.float64) for _ in range(3)]
        assert estimate_nbytes(arrays) >= 3 * 128
        assert estimate_nbytes({"k": arrays[0]}) >= 128

    def test_cache_nbytes_reports_value_sizes(self):
        from repro.serve.cache import LruCache, TtlCache
        lru = LruCache(8)
        lru.put("a", np.zeros(32, dtype=np.float64))
        assert lru.nbytes() >= 256
        ttl = TtlCache(8, ttl=60.0)
        ttl.put("a", np.zeros(64, dtype=np.float64))
        assert ttl.nbytes() >= 512
