"""Production diagnostics units: flight recorder, tail sampler, SLO engine.

Everything here is pure and socket-free — the HTTP surface is covered in
``tests/serve/test_debug_http.py`` and the end-to-end wiring in
``tests/serve/test_diag_runtime.py`` / ``tests/gateway/test_diag_gateway.py``.
"""

import os
import re

import pytest

from repro import obs
from repro.obs.diag import (DEFAULT_SLOS, DiagConfig, Diagnostics,
                            FlightRecord, FlightRecorder, SloEngine,
                            SloObjective, TailSampler, next_request_id)
from repro.obs.metrics import MetricsRegistry

pytestmark = [pytest.mark.obs, pytest.mark.diag]


class ManualClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRequestIds:
    def test_shape_is_pid_hex_plus_counter(self):
        rid = next_request_id()
        match = re.fullmatch(r"r([0-9a-f]+)-(\d{8})", rid)
        assert match is not None
        assert int(match.group(1), 16) == os.getpid()

    def test_monotonic_and_unique(self):
        ids = [next_request_id() for _ in range(100)]
        assert len(set(ids)) == 100
        assert ids == sorted(ids)  # zero-padded counter sorts correctly


class TestFlightRecord:
    def test_to_dict_is_json_safe_and_drops_root_span(self):
        record = FlightRecord(request_id="r1", tenant="acme",
                              latency_ms=1.5)
        record.root_span = object()  # anything non-serialisable
        row = record.to_dict()
        assert "root_span" not in row
        assert row["request_id"] == "r1"
        assert row["tenant"] == "acme"
        assert row["latency_ms"] == 1.5


class TestFlightRecorder:
    def test_ring_evicts_but_total_keeps_counting(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(5):
            recorder.append(FlightRecord(request_id=f"r{index}"))
        assert len(recorder) == 3
        assert recorder.total == 5
        assert [r.request_id for r in recorder.dump()] == \
            ["r4", "r3", "r2"]  # newest first, oldest evicted

    def test_dump_filters(self):
        recorder = FlightRecorder(capacity=16)
        for index in range(6):
            recorder.append(FlightRecord(
                request_id=f"r{index}",
                tenant="acme" if index % 2 else "bits",
                latency_ms=float(index)))
        assert len(recorder.dump(n=2)) == 2
        acme = recorder.dump(tenant="acme")
        assert {r.tenant for r in acme} == {"acme"}
        slow = recorder.dump(min_ms=4.0)
        assert [r.request_id for r in slow] == ["r5", "r4"]
        assert recorder.dump(request_id="r3")[0].request_id == "r3"
        assert recorder.dump(request_id="nope") == []

    def test_min_ms_uses_total_when_larger(self):
        """A gateway-queued request can spend its life *waiting*; the
        latency filter must see total_ms, not just runtime latency."""
        recorder = FlightRecorder()
        recorder.append(FlightRecord(request_id="r1", latency_ms=1.0,
                                     total_ms=100.0))
        assert recorder.dump(min_ms=50.0) != []

    def test_get_returns_none_for_unknown(self):
        recorder = FlightRecorder()
        assert recorder.get("nope") is None

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestTailSampler:
    @staticmethod
    def record(latency_ms=1.0, error="", hedge_wins=0):
        return FlightRecord(request_id="r", latency_ms=latency_ms,
                            error=error, hedge_wins=hedge_wins)

    def test_error_always_retained(self):
        sampler = TailSampler(top_p=None)
        assert sampler.decide(self.record(error="deadline")) == "error"

    def test_hedge_win_always_retained(self):
        sampler = TailSampler(top_p=None)
        assert sampler.decide(self.record(hedge_wins=1)) == "hedge_win"

    def test_latency_threshold(self):
        sampler = TailSampler(latency_threshold_ms=10.0, top_p=None)
        assert sampler.decide(self.record(latency_ms=9.0)) == ""
        assert sampler.decide(self.record(latency_ms=10.0)) == "slow"

    def test_top_p_needs_warmup(self):
        sampler = TailSampler(top_p=0.05, warmup=50)
        # a huge outlier before warmup is NOT retained: with no history
        # the quantile is meaningless, so the sampler stays quiet
        assert sampler.decide(self.record(latency_ms=1e6)) == ""

    def test_top_p_catches_the_rolling_tail(self):
        sampler = TailSampler(top_p=0.05, warmup=50)
        for _ in range(100):
            assert sampler.decide(self.record(latency_ms=1.0)) == ""
        assert sampler.decide(self.record(latency_ms=50.0)) == "top_p"
        # and the fast path stays unretained afterwards
        assert sampler.decide(self.record(latency_ms=1.0)) == ""

    def test_retain_ring_bounded_by_max_traces(self):
        sampler = TailSampler(max_traces=2)
        for index in range(4):
            sampler.retain(f"r{index}", [])
        assert len(sampler) == 2
        assert sampler.request_ids() == ["r2", "r3"]
        assert sampler.trace("r0") is None
        assert sampler.trace("r3") == []
        assert sampler.retained == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            TailSampler(top_p=0.0)
        with pytest.raises(ValueError):
            TailSampler(top_p=1.5)
        with pytest.raises(ValueError):
            TailSampler(max_traces=0)


class TestSloObjective:
    def test_budget_is_one_minus_target(self):
        assert SloObjective("a", 0.999).budget == pytest.approx(0.001)

    def test_validation(self):
        with pytest.raises(ValueError):
            SloObjective("a", 1.0)
        with pytest.raises(ValueError):
            SloObjective("a", 0.99, kind="latency")  # no threshold
        with pytest.raises(ValueError):
            SloObjective("a", 0.99, kind="nope")

    def test_defaults_declare_availability_and_latency(self):
        kinds = {o.kind for o in DEFAULT_SLOS}
        assert kinds == {"availability", "latency"}
        latency = next(o for o in DEFAULT_SLOS if o.kind == "latency")
        assert latency.threshold_ms == 50.0


class TestSloEngine:
    @staticmethod
    def engine(clock, registry=None):
        return SloEngine([SloObjective("availability", 0.999)],
                         registry=registry, clock=clock)

    def test_no_traffic_means_zero_burn(self):
        clock = ManualClock()
        engine = self.engine(clock)
        assert engine.burn_rate(engine.objectives[0], 300.0) == 0.0

    def test_all_good_means_zero_burn(self):
        clock = ManualClock()
        engine = self.engine(clock)
        for _ in range(10):
            engine.observe(ok=True)
        assert engine.burn_rate(engine.objectives[0], 300.0) == 0.0

    def test_burn_is_bad_fraction_over_budget(self):
        clock = ManualClock()
        engine = self.engine(clock)
        for _ in range(9):
            engine.observe(ok=True)
        engine.observe(ok=False)
        # bad fraction 0.1, budget 0.001 -> burn 100
        assert engine.burn_rate(engine.objectives[0], 300.0) == \
            pytest.approx(100.0)

    def test_events_age_out_of_the_window(self):
        clock = ManualClock()
        engine = self.engine(clock)
        engine.observe(ok=False)
        assert engine.burn_rate(engine.objectives[0], 300.0) > 0
        clock.advance(400.0)  # past the 5m window
        assert engine.burn_rate(engine.objectives[0], 300.0) == 0.0
        clock.advance(30000.0)  # past the whole 6h horizon
        assert engine.burn_rate(engine.objectives[0], 21600.0) == 0.0

    def test_long_window_vetoes_a_brief_blip(self):
        """The point of multiwindow alerts: a short bad burst after an
        hour of good traffic trips the 5m burn but not the 1h (or 6h)
        burn, so no alert fires; a sustained burst fires ``fast``."""
        clock = ManualClock(now=0.0)
        engine = self.engine(clock)
        for _ in range(720):  # one good event / 5s for an hour
            engine.observe(ok=True)
            clock.advance(5.0)
        for _ in range(4):  # blip: 4 bad in the last bucket
            engine.observe(ok=False)
        (entry,) = engine.evaluate()
        assert entry["burn_rates"]["5m"] > 14.4  # short window screams
        assert entry["alert"] == ""  # ...but the long windows veto it
        for _ in range(200):  # sustained brownout
            engine.observe(ok=False)
        (entry,) = engine.evaluate()
        assert entry["alert"] == "fast"
        assert entry["burn_rates"]["1h"] > 14.4

    def test_latency_objective_counts_slow_and_errored_as_bad(self):
        clock = ManualClock()
        engine = SloEngine(
            [SloObjective("lat", 0.9, kind="latency", threshold_ms=50.0)],
            clock=clock)
        engine.observe(ok=True, latency_ms=10.0)   # good
        engine.observe(ok=True, latency_ms=100.0)  # slow -> bad
        engine.observe(ok=False, latency_ms=1.0)   # errored -> bad
        # bad fraction 2/3, budget 0.1 -> burn 6.66
        assert engine.burn_rate(engine.objectives[0], 300.0) == \
            pytest.approx((2 / 3) / 0.1)

    def test_evaluate_publishes_gauges(self):
        clock = ManualClock()
        registry = MetricsRegistry()
        engine = self.engine(clock, registry=registry)
        engine.observe(ok=False)
        engine.evaluate()
        gauges = registry.snapshot().gauges
        assert gauges["slo_burn_rate{slo=availability,window=5m}"] > 0
        assert "slo_alert_active{slo=availability}" in gauges

    def test_duplicate_slo_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SloEngine([SloObjective("a", 0.99),
                       SloObjective("a", 0.999)])


class TestDiagnostics:
    @staticmethod
    def diag(**kwargs):
        return Diagnostics(DiagConfig(trace_top_p=None),
                           registry=MetricsRegistry(), **kwargs)

    def test_begin_mints_id_and_resume_finds_it(self):
        diag = self.diag()
        record = diag.begin(tenant="acme")
        assert record.request_id
        assert diag.resume(record.request_id) is record
        assert diag.resume("") is None
        assert diag.resume("nope") is None

    def test_commit_is_exactly_once(self):
        diag = self.diag()
        record = diag.begin()
        record.latency_ms = 1.0
        diag.commit(record)
        diag.commit(record)  # second commit: no-op
        assert diag.flight.total == 1
        assert diag.resume(record.request_id) is None  # no longer open

    def test_commit_of_never_begun_record_is_noop(self):
        diag = self.diag()
        diag.commit(FlightRecord(request_id="stranger"))
        assert diag.flight.total == 0

    def test_in_progress_registry_is_bounded(self):
        diag = self.diag(max_in_progress=2)
        first = diag.begin()
        diag.begin()
        diag.begin()  # evicts `first` from the in-progress registry
        diag.commit(first)  # ...so its commit became a no-op
        assert diag.flight.total == 0

    def test_commit_feeds_the_slo_engine(self):
        diag = self.diag()
        good = diag.begin()
        good.latency_ms = 1.0
        diag.commit(good)
        bad = diag.begin()
        bad.error = "ratelimit"
        diag.commit(bad)
        availability = diag.slo.objectives[0]
        assert diag.slo.burn_rate(availability, 300.0) == \
            pytest.approx(0.5 / availability.budget)

    def test_flight_payload_shape(self):
        diag = self.diag()
        record = diag.begin(tenant="acme")
        diag.commit(record)
        payload = diag.flight_payload(n=10)
        assert payload["count"] == 1
        assert payload["total_recorded"] == 1
        assert payload["records"][0]["tenant"] == "acme"
        assert payload["traces_retained"] == 0

    def test_slo_payload_lists_p99_exemplars(self):
        registry = MetricsRegistry()
        diag = Diagnostics(DiagConfig(trace_top_p=None), registry=registry)
        histogram = registry.histogram("latency_ms")
        for index in range(20):
            histogram.observe(float(index), exemplar=f"r{index}")
        payload = diag.slo_payload()
        latency = next(o for o in payload["objectives"]
                       if o["kind"] == "latency")
        assert latency["exemplars"], "p99 exemplars missing"
        top = latency["exemplars"][-1]
        assert top["request_id"] == "r19"
        assert top["latency_ms"] == 19.0
        assert payload["windows"]["fast"] == [300.0, 3600.0, 14.4]

    def test_trace_retention_requires_enabled_tracing(self):
        """With tracing off there is no span tree to keep: commit still
        records the flight entry but retains nothing."""
        diag = Diagnostics(DiagConfig(trace_latency_ms=0.0,
                                      trace_top_p=None),
                           registry=MetricsRegistry())
        record = diag.begin()
        record.latency_ms = 99.0
        diag.commit(record)
        assert diag.flight.total == 1
        assert not record.trace_retained
        assert diag.trace(record.request_id) is None

    def test_trace_retention_keeps_the_span_subtree(self):
        registry = MetricsRegistry()
        with obs.enabled():
            tracer = obs.get_tracer()
            diag = Diagnostics(DiagConfig(trace_latency_ms=0.0,
                                          trace_top_p=None),
                               registry=registry, tracer=tracer)
            record = diag.begin()
            root = tracer.start_span("serve.request")
            child = tracer.start_span("serve.embed", parent=root)
            tracer.end_span(child)
            tracer.end_span(root)
            record.root_span = root
            record.latency_ms = 42.0
            diag.commit(record)
            assert record.trace_retained
            spans = diag.trace(record.request_id)
            assert [s.name for s in spans] == \
                ["serve.request", "serve.embed"]
            # every retained span is stamped with the join key
            assert {s.attrs["request_id"] for s in spans} == \
                {record.request_id}

    def test_fast_request_leaves_no_retained_trace(self):
        with obs.enabled():
            tracer = obs.get_tracer()
            diag = Diagnostics(DiagConfig(trace_latency_ms=1000.0,
                                          trace_top_p=None),
                               registry=MetricsRegistry(), tracer=tracer)
            record = diag.begin()
            root = tracer.start_span("serve.request")
            tracer.end_span(root)
            record.root_span = root
            record.latency_ms = 0.5
            diag.commit(record)
            assert not record.trace_retained
            assert diag.trace(record.request_id) is None
            assert diag.sampler.discarded == 1
