"""Profiler: on/off parity, op attribution, restore-on-exit."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn import modules as nn_modules
from repro.nn import tensor as nn_tensor
from repro.obs import ModuleTimer, Profiler

pytestmark = pytest.mark.obs


def _forward_backward(seed: int = 0):
    """A small MLP step exercising matmul, add, relu, softmax, sum."""
    rng = np.random.default_rng(seed)
    mlp = nn.MLP(6, 8, 4, rng=rng)
    x = nn.Tensor(rng.normal(size=(5, 6)), requires_grad=True)
    out = F.softmax(mlp(x), axis=-1).sum()
    out.backward()
    grads = [np.array(p.grad) for p in mlp.parameters()]
    return float(out.data), np.array(x.grad), grads


class TestParity:
    def test_outputs_and_grads_identical_with_profiler(self):
        loss_off, xgrad_off, grads_off = _forward_backward()
        with Profiler() as prof:
            loss_on, xgrad_on, grads_on = _forward_backward()
        assert loss_on == loss_off
        np.testing.assert_array_equal(xgrad_on, xgrad_off)
        for on, off in zip(grads_on, grads_off):
            np.testing.assert_array_equal(on, off)
        assert prof.op_stats  # and it did record something

    def test_patching_restored_on_exit(self):
        before = {name: getattr(nn.Tensor, name)
                  for name in ("__add__", "__matmul__", "sum")}
        before_functional = F.relu
        with Profiler():
            assert F.relu is not before_functional
        for name, fn in before.items():
            assert getattr(nn.Tensor, name) is fn
        assert F.relu is before_functional
        assert nn_tensor.get_profiler() is None
        assert nn_modules.get_call_hook() is None

    def test_restored_even_on_exception(self):
        before = nn.Tensor.__add__
        with pytest.raises(RuntimeError):
            with Profiler():
                raise RuntimeError("boom")
        assert nn.Tensor.__add__ is before
        assert nn_tensor.get_profiler() is None


class TestOpStats:
    def test_forward_and_backward_attributed(self):
        with Profiler(with_modules=False) as prof:
            _forward_backward()
        stats = prof.op_stats
        for op in ("__matmul__", "__add__", "relu", "softmax", "sum"):
            assert stats[op].calls >= 1, op
            assert stats[op].forward_s >= 0.0
        # ops on the grad path recorded backward passes
        assert stats["__matmul__"].backward_calls >= 1
        assert stats["sum"].backward_calls >= 1

    def test_self_time_excludes_children(self):
        # softmax is built from exp/sub/div/sum: its self time must not
        # swallow the children, so the sum of self times stays <= wall.
        with Profiler(with_modules=False) as prof:
            _forward_backward()
        total_forward = sum(s.forward_s for s in prof.op_stats.values())
        assert total_forward < 10.0  # sane, not double counted to absurdity
        assert prof.op_stats["softmax"].forward_s >= 0.0

    def test_alloc_bytes_counted(self):
        with Profiler(with_modules=False) as prof:
            a = nn.Tensor(np.zeros((100, 50)))
            b = nn.Tensor(np.ones((100, 50)))
            _ = a + b
        assert prof.op_stats["__add__"].alloc_bytes >= 100 * 50 * 8

    def test_reflected_ops_report_canonical_name(self):
        with Profiler(with_modules=False) as prof:
            _ = 2.0 * nn.Tensor(np.ones(3))
        assert "__mul__" in prof.op_stats
        assert "__rmul__" not in prof.op_stats

    def test_table_renders(self):
        with Profiler() as prof:
            _forward_backward()
        table = prof.table(limit=5)
        assert "op" in table and "fwd ms" in table
        assert "module" in table  # module section present


class TestModuleHook:
    def test_module_stats_collected(self):
        with Profiler() as prof:
            _forward_backward()
        assert prof.module_stats["MLP"].calls == 1
        assert prof.module_stats["Linear"].calls >= 2  # MLP's layers
        mlp = prof.module_stats["MLP"]
        assert mlp.self_s <= mlp.total_s

    def test_module_timer_standalone(self):
        with ModuleTimer() as timer:
            _forward_backward()
        by_module = timer.seconds_by_module()
        assert set(by_module) >= {"MLP", "Linear"}
        assert all(v >= 0.0 for v in by_module.values())
        assert nn_modules.get_call_hook() is None

    def test_nested_profilers_rejected(self):
        with Profiler():
            with pytest.raises(RuntimeError):
                with Profiler():
                    pass
        with ModuleTimer():
            with pytest.raises(RuntimeError):
                with ModuleTimer():
                    pass
