"""The profile-diff tooling: ``cli prof --diff`` and the regression
gate's attribution table (``benchmarks/record.py``).

Both consume recorded ``/debug/prof`` payloads from disk, so these
tests fabricate baseline/latest pairs with a known injected shift and
assert the shifted frame (and plan-op kind) is what gets named.
"""

import json
import pathlib
import sys

import pytest

from repro.cli import main as cli_main

pytestmark = [pytest.mark.obs, pytest.mark.prof]

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _payload(hot_count, cold_count, project_s):
    """A /debug/prof payload whose hot-frame weight is adjustable."""
    stacks = {"serve@1;main;serve.py:handle;model.py:hot_frame":
              hot_count,
              "serve@1;main;serve.py:handle;kg.py:cold_frame":
              cold_count}
    return {
        "merged": {"stacks": stacks,
                   "samples": hot_count + cold_count,
                   "duration_s": 1.0, "hz": 67.0, "pid": 1,
                   "role": "merged", "overhead_ratio": 0.01},
        "plan_ops": {"project": project_s, "anchor": 1.0,
                     "finalize": 1.0},
    }


@pytest.fixture()
def recorded_pair(tmp_path):
    baseline = tmp_path / "serve_profile.baseline.json"
    latest = tmp_path / "serve_profile.latest.json"
    # baseline 50/50; latest: hot_frame takes 80% and the project op
    # doubles its share of plan time
    baseline.write_text(json.dumps(_payload(50, 50, 1.0)))
    latest.write_text(json.dumps(_payload(80, 20, 8.0)))
    return baseline, latest


class TestCliProfDiff:
    def test_diff_prints_frame_and_plan_op_tables(self, recorded_pair,
                                                  capsys):
        baseline, latest = recorded_pair
        assert cli_main(["prof", "--diff", str(baseline),
                         str(latest)]) == 0
        out = capsys.readouterr().out
        assert "self-time share by frame" in out
        assert "plan-op share of plan wall time" in out
        # the injected riser leads its table with a positive delta
        frame_lines = [line for line in out.splitlines()
                       if "hot_frame" in line]
        assert frame_lines and "+30.0pp" in frame_lines[0]
        assert any("project" in line and "+" in line
                   for line in out.splitlines())

    def test_diff_needs_no_target(self, recorded_pair):
        """--diff is offline: no HOST:PORT, no server, no network."""
        baseline, latest = recorded_pair
        assert cli_main(["prof", "--diff", str(baseline),
                         str(latest)]) == 0

    def test_prof_without_target_or_diff_exits(self):
        with pytest.raises(SystemExit, match="HOST:PORT"):
            cli_main(["prof"])

    def test_diff_rejects_junk_files(self, tmp_path):
        junk = tmp_path / "junk.json"
        junk.write_text(json.dumps({"nope": 1}))
        with pytest.raises(ValueError, match="not a recorded profile"):
            cli_main(["prof", "--diff", str(junk), str(junk)])


def _load_record_module():
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        import record
        return record
    finally:
        sys.path.pop(0)


class TestRegressionAttribution:
    def test_failed_gate_prints_attribution_table(self, recorded_pair,
                                                  tmp_path, capsys):
        record = _load_record_module()
        bench = tmp_path / "BENCH_test.json"
        record.record(bench, {"batched_qps": 1000.0},
                      commit="aaaa", timestamp="2026-08-01T00:00:00+00:00")
        record.record(bench, {"batched_qps": 500.0},  # 50% drop
                      commit="bbbb", timestamp="2026-08-02T00:00:00+00:00")
        status = record.main(["--check-regression", str(bench),
                              "--prof-dir",
                              str(recorded_pair[0].parent)])
        assert status == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "batched_qps" in out
        # ... and the failure names its suspects
        assert "attribution (serve_profile)" in out
        assert "hot_frame" in out
        assert "project" in out

    def test_attribution_never_masks_the_failure(self, tmp_path,
                                                 capsys):
        """A missing/empty profile dir degrades to the plain failure."""
        record = _load_record_module()
        bench = tmp_path / "BENCH_test.json"
        record.record(bench, {"batched_qps": 1000.0}, commit="a",
                      timestamp="2026-08-01T00:00:00+00:00")
        record.record(bench, {"batched_qps": 500.0}, commit="b",
                      timestamp="2026-08-02T00:00:00+00:00")
        status = record.main(["--check-regression", str(bench),
                              "--prof-dir",
                              str(tmp_path / "no_such_dir")])
        assert status == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "attribution" not in out

    def test_passing_gate_prints_no_attribution(self, recorded_pair,
                                                tmp_path, capsys):
        record = _load_record_module()
        bench = tmp_path / "BENCH_test.json"
        record.record(bench, {"batched_qps": 1000.0}, commit="a",
                      timestamp="2026-08-01T00:00:00+00:00")
        record.record(bench, {"batched_qps": 990.0}, commit="b",
                      timestamp="2026-08-02T00:00:00+00:00")
        status = record.main(["--check-regression", str(bench),
                              "--prof-dir",
                              str(recorded_pair[0].parent)])
        assert status == 0
        assert "attribution" not in capsys.readouterr().out

    def test_gated_prof_metrics_have_directions(self):
        record = _load_record_module()
        assert record.METRIC_DIRECTIONS["prof_overhead_ratio"] is False
        assert record.METRIC_DIRECTIONS["plan_stage_seconds_total"] \
            is False
