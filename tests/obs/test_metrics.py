"""The canonical metrics layer: labels, deltas, merge, rendering.

The label/delta/merge surface is what the shard worker pool relies on
(``repro.dist.pool`` piggybacks :class:`MetricsDelta` objects on worker
replies); these tests pin its semantics single-process, and
``tests/dist/test_telemetry.py`` re-checks the merge invariant across
real worker processes.
"""

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (MetricsDelta, MetricsRegistry,
                               PeriodicReporter, format_snapshot,
                               metric_key, parse_metric_key,
                               snapshot_from_json, snapshot_to_json)

pytestmark = pytest.mark.obs


class TestMetricKeys:
    def test_plain_name_round_trips(self):
        assert metric_key("requests") == "requests"
        assert parse_metric_key("requests") == ("requests", {})

    def test_labels_sorted_and_rendered(self):
        key = metric_key("rank_requests", {"shard": 3, "host": "a"})
        assert key == "rank_requests{host=a,shard=3}"

    def test_label_order_does_not_matter(self):
        a = metric_key("m", {"x": 1, "y": 2})
        b = metric_key("m", {"y": 2, "x": 1})
        assert a == b

    def test_parse_inverts_render(self):
        key = metric_key("rank_block_ms", {"shard": 2})
        base, labels = parse_metric_key(key)
        assert base == "rank_block_ms"
        assert labels == {"shard": "2"}
        assert metric_key(base, labels) == key

    def test_specials_in_label_values_round_trip(self):
        """Values containing the key syntax itself (``, = { } \\``) must
        survive render -> parse unchanged (they used to shear the key
        apart at the first comma)."""
        labels = {"tenant": "a=b,{c}\\d", "q": "{}"}
        base, parsed = parse_metric_key(metric_key("m", labels))
        assert base == "m"
        assert parsed == labels

    @given(labels=st.dictionaries(
        st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True),
        st.text(max_size=24), max_size=4))
    def test_round_trip_any_label_values(self, labels):
        """Property: parse_metric_key inverts metric_key for arbitrary
        label values, including the escape character and separators."""
        key = metric_key("m", labels)
        base, parsed = parse_metric_key(key)
        assert base == "m"
        assert parsed == labels


class TestLabelledMetrics:
    def test_labelled_series_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("rank_requests", shard=0).inc(3)
        registry.counter("rank_requests", shard=1).inc(5)
        registry.counter("rank_requests").inc(1)  # plain sibling coexists
        snapshot = registry.snapshot()
        assert snapshot.counters["rank_requests{shard=0}"] == 3
        assert snapshot.counters["rank_requests{shard=1}"] == 5
        assert snapshot.counters["rank_requests"] == 1

    def test_same_labels_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("c", shard=1) is registry.counter(
            "c", shard=1)
        assert registry.counter("c", shard=1) is not registry.counter(
            "c", shard=2)

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        counter.inc(2)
        with pytest.raises(ValueError, match="monotonic"):
            counter.inc(-1)
        assert counter.value == 2  # the failed inc left no trace


class TestDeltaFlush:
    def test_flush_returns_increments_since_last_flush(self):
        registry = MetricsRegistry(track_deltas=True)
        registry.counter("requests").inc(3)
        first = registry.flush_delta()
        assert first.counters == {"requests": 3}
        registry.counter("requests").inc(2)
        second = registry.flush_delta()
        assert second.counters == {"requests": 2}  # not 5: increments
        assert not registry.flush_delta()  # nothing new -> falsy delta

    def test_histogram_samples_drain_once(self):
        registry = MetricsRegistry(track_deltas=True)
        registry.histogram("latency_ms").observe(1.0)
        registry.histogram("latency_ms").observe(2.0)
        delta = registry.flush_delta()
        assert delta.samples == {"latency_ms": [1.0, 2.0]}
        assert registry.flush_delta().samples == {}
        # ... but the local window still has them
        assert registry.snapshot().histograms["latency_ms"].count == 2

    def test_merge_accumulates_counters_and_samples(self):
        parent = MetricsRegistry()
        parent.counter("rank_requests", shard=0).inc(10)
        delta = MetricsDelta(counters={"rank_requests{shard=0}": 4},
                             gauges={"occupancy": 0.5},
                             samples={"rank_block_ms{shard=0}": [3.0]})
        parent.merge(delta)
        parent.merge(MetricsDelta(
            counters={"rank_requests{shard=0}": 1}))
        snapshot = parent.snapshot()
        assert snapshot.counters["rank_requests{shard=0}"] == 15
        assert snapshot.gauges["occupancy"] == 0.5
        assert snapshot.histograms["rank_block_ms{shard=0}"].count == 1

    def test_merge_order_independent_for_counters(self):
        deltas = [MetricsDelta(counters={"c": i}) for i in (1, 2, 3)]
        forward = MetricsRegistry()
        backward = MetricsRegistry()
        for delta in deltas:
            forward.merge(delta)
        for delta in reversed(deltas):
            backward.merge(delta)
        assert forward.snapshot().counters == backward.snapshot().counters


class TestJsonRoundTrip:
    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("rank_requests", shard=1).inc(7)
        registry.gauge("shards").set(2)
        registry.histogram("latency_ms").observe(5.0)
        snapshot = registry.snapshot()
        rebuilt = snapshot_from_json(snapshot_to_json(snapshot))
        assert rebuilt.counters == snapshot.counters
        assert rebuilt.gauges == snapshot.gauges
        assert rebuilt.histograms["latency_ms"].p50 == \
            snapshot.histograms["latency_ms"].p50


class TestFormatGolden:
    def test_labelled_rows_grouped_by_base_name(self):
        registry = MetricsRegistry()
        registry.counter("rank_requests", shard=0).inc(3)
        registry.counter("rank_requests", shard=1).inc(5)
        registry.counter("worker_respawns").inc(1)
        registry.gauge("shards").set(2)
        registry.histogram("rank_block_ms", shard=0).observe(4.0)
        golden = (
            "== serve stats ==\n"
            "counters:\n"
            "  rank_requests{shard=0}                3\n"
            "  rank_requests{shard=1}                5\n"
            "  worker_respawns                       1\n"
            "gauges:\n"
            "  shards                              2.0\n"
            "histograms:\n"
            "  rank_block_ms{shard=0} count=1       "
            "mean=   4.000 p50=   4.000 p95=   4.000 p99=   4.000 "
            "max=   4.000"
        )
        assert format_snapshot(registry.snapshot()) == golden


class TestPeriodicReporterResilience:
    def test_raising_callback_keeps_thread_alive(self):
        registry = MetricsRegistry()
        second_tick = threading.Event()
        calls = []

        def flaky(snapshot):
            calls.append(snapshot)
            if len(calls) == 1:
                raise RuntimeError("boom")
            second_tick.set()

        reporter = PeriodicReporter(registry, flaky, interval=0.02)
        reporter.start()
        try:
            assert second_tick.wait(timeout=5.0), \
                "reporter thread died after the first callback raised"
        finally:
            reporter.stop()
        assert len(calls) >= 2
        assert registry.counter("reporter_errors").value == 1
