"""Tier-1 guarantee: always-on sampling costs <2% of served p50 latency.

Same interleaved-blocks protocol as the benchmark-suite version
(``benchmarks/bench_serve_throughput.py::test_bench_prof_overhead``)
with a shrunk round count so it fits tier-1 time: two identical
runtimes, one with ``profiling=True`` and one without, alternate blocks
of requests so machine drift hits both sides equally, and the p50s are
compared with the 2%-relative / 0.25ms-absolute bound.  The absolute
floor keeps a sub-millisecond p50 from failing on scheduler noise that
has nothing to do with the sampler.
"""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.core import HalkModel
from repro.kg import KnowledgeGraph
from repro.queries import Entity, Projection
from repro.serve import ServeConfig, ServeRuntime

pytestmark = [pytest.mark.obs, pytest.mark.prof]


def _workload():
    rng = np.random.default_rng(5)
    n = 60
    kg = KnowledgeGraph(n, 4, sorted({
        (int(rng.integers(n)), int(rng.integers(4)), int(rng.integers(n)))
        for _ in range(240)}))
    model = HalkModel(kg, ModelConfig(embedding_dim=8, hidden_dim=16,
                                      seed=0))
    seen, queries = set(), []
    for head, rel, _ in kg:
        if (head, rel) not in seen:
            seen.add((head, rel))
            queries.append(Projection(rel, Entity(head)))
        if len(queries) == 8:
            break
    return kg, model, queries


def test_sampler_overhead_under_2_percent_p50():
    kg, model, queries = _workload()
    # answer_cache_size=1 forces the model path: a cache hit costs
    # microseconds and would hide any profiler overhead entirely
    config = dict(max_batch_size=1, num_workers=1, answer_cache_size=1)
    rounds, block = 120, 30
    latencies = {"on": [], "off": []}
    with ServeRuntime(model, kg=kg,
                      config=ServeConfig(profiling=False,
                                         **config)) as off_runtime, \
            ServeRuntime(model, kg=kg,
                         config=ServeConfig(profiling=True, prof_hz=67.0,
                                            **config)) as on_runtime:
        assert on_runtime.prof is not None and on_runtime.prof.running
        assert off_runtime.prof is None
        runtimes = {"on": on_runtime, "off": off_runtime}
        for runtime in runtimes.values():  # warm threads + embed cache
            for query in queries:
                runtime.answer(query, top_k=5)
        done = 0
        while done < rounds:
            for label, runtime in runtimes.items():
                for index in range(done, min(done + block, rounds)):
                    result = runtime.answer(queries[index % len(queries)],
                                            top_k=5)
                    latencies[label].append(result.latency * 1000.0)
            done += block
        # the sampler measured its own cost and stayed inside budget
        # (or halved its rate until it did)
        ratio = on_runtime.prof.overhead_ratio
        budget = on_runtime.prof.overhead_budget
        assert ratio <= 2.0 * budget, (
            f"sampler self-cost {ratio:.3f} of interval never converged "
            f"under budget {budget}")
        assert on_runtime.prof.snapshot().samples > 0
    on_p50 = float(np.percentile(latencies["on"], 50))
    off_p50 = float(np.percentile(latencies["off"], 50))
    assert on_p50 <= max(1.02 * off_p50, off_p50 + 0.25), (
        f"profiling-on p50 {on_p50:.3f}ms vs off {off_p50:.3f}ms "
        f"breaks the 2% overhead budget")
