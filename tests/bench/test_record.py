"""The benchmark trajectory recorder and its regression gate."""

import json
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "benchmarks"))

import record  # noqa: E402


@pytest.fixture()
def trajectory(tmp_path) -> pathlib.Path:
    return tmp_path / "BENCH_test.json"


class TestRecord:
    def test_entries_append_and_keep_history(self, trajectory):
        record.record(trajectory, {"batched_qps": 100.0},
                      commit="aaa1111", timestamp="2026-08-01T00:00:00")
        record.record(trajectory, {"batched_qps": 110.0},
                      commit="bbb2222", timestamp="2026-08-02T00:00:00")
        entries = record.load_entries(trajectory)
        assert [e["value"] for e in entries] == [100.0, 110.0]
        assert [e["commit"] for e in entries] == ["aaa1111", "bbb2222"]
        assert all(e["higher_is_better"] for e in entries)

    def test_per_metric_direction(self, trajectory):
        record.record(trajectory,
                      {"qps": 100.0, "latency_ms": 5.0},
                      higher_is_better={"qps": True, "latency_ms": False},
                      commit="c", timestamp="t")
        by_metric = {e["metric"]: e for e in
                     record.load_entries(trajectory)}
        assert by_metric["qps"]["higher_is_better"] is True
        assert by_metric["latency_ms"]["higher_is_better"] is False

    def test_file_is_valid_json_list(self, trajectory):
        record.record(trajectory, {"m": 1.0}, commit="c", timestamp="t")
        payload = json.loads(trajectory.read_text())
        assert isinstance(payload, list)


class TestCheckRegression:
    def test_within_threshold_passes(self, trajectory):
        record.record(trajectory, {"qps": 100.0}, commit="a", timestamp="t")
        record.record(trajectory, {"qps": 90.0}, commit="b", timestamp="t")
        report = record.check_regression(trajectory, threshold=0.2)
        assert report["qps"]["change"] == pytest.approx(0.10)

    def test_25_percent_drop_fails(self, trajectory):
        record.record(trajectory, {"qps": 100.0}, commit="a", timestamp="t")
        record.record(trajectory, {"qps": 75.0}, commit="b", timestamp="t")
        with pytest.raises(record.RegressionError, match="qps"):
            record.check_regression(trajectory, threshold=0.2)

    def test_lower_is_better_direction_respected(self, trajectory):
        record.record(trajectory, {"latency_ms": 4.0},
                      higher_is_better=False, commit="a", timestamp="t")
        record.record(trajectory, {"latency_ms": 5.0},
                      higher_is_better=False, commit="b", timestamp="t")
        with pytest.raises(record.RegressionError, match="rose"):
            record.check_regression(trajectory, threshold=0.2)
        # a latency *drop* is an improvement, never a failure
        record.record(trajectory, {"latency_ms": 2.0},
                      higher_is_better=False, commit="c", timestamp="t")
        report = record.check_regression(trajectory, threshold=0.2)
        assert report["latency_ms"]["change"] < 0

    def test_compares_against_best_not_previous(self, trajectory):
        # each step drops 10% (under threshold vs previous), but the
        # cumulative drift vs the best must still trip the gate
        for index, value in enumerate((100.0, 90.0, 81.0, 72.9)):
            record.record(trajectory, {"qps": value},
                          commit=f"c{index}", timestamp="t")
        with pytest.raises(record.RegressionError):
            record.check_regression(trajectory, threshold=0.2)

    def test_single_entry_has_nothing_to_compare(self, trajectory):
        record.record(trajectory, {"qps": 100.0}, commit="a", timestamp="t")
        assert record.check_regression(trajectory) == {}


class TestCliExit:
    def _run(self, *argv) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, str(REPO / "benchmarks" / "record.py"),
             *argv], capture_output=True, text=True, timeout=60)

    def test_exit_nonzero_on_synthetic_25_percent_regression(
            self, trajectory):
        record.record(trajectory, {"batched_qps": 1000.0},
                      commit="good", timestamp="t")
        record.record(trajectory, {"batched_qps": 750.0},
                      commit="bad", timestamp="t")
        result = self._run(str(trajectory), "--check-regression")
        assert result.returncode != 0
        assert "REGRESSION" in result.stdout
        assert "batched_qps" in result.stdout

    def test_exit_zero_when_healthy(self, trajectory):
        record.record(trajectory, {"batched_qps": 1000.0},
                      commit="good", timestamp="t")
        record.record(trajectory, {"batched_qps": 980.0},
                      commit="fine", timestamp="t")
        result = self._run(str(trajectory), "--check-regression")
        assert result.returncode == 0

    def test_missing_file_fails_the_gate(self, tmp_path):
        result = self._run(str(tmp_path / "BENCH_absent.json"),
                           "--check-regression")
        assert result.returncode != 0
