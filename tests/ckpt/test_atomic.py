"""Atomic-writer tests, including crash injection at every seam."""

import os

import numpy as np
import pytest

from repro.ckpt import (CheckpointError, atomic_write_bytes,
                        atomic_write_json, load_checkpoint, save_checkpoint)

pytestmark = pytest.mark.ckpt


class TestAtomicWrite:
    def test_writes_bytes(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"hello")
        assert path.read_bytes() == b"hello"

    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "out.bin"
        path.write_bytes(b"old")
        atomic_write_bytes(path, b"new")
        assert path.read_bytes() == b"new"

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "meta.json"
        atomic_write_json(path, {"a": 1, "b": [1.5, "x"]})
        import json
        assert json.loads(path.read_text()) == {"a": 1, "b": [1.5, "x"]}

    def test_no_tmp_droppings_on_success(self, tmp_path):
        atomic_write_bytes(tmp_path / "out.bin", b"data")
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]


class TestCrashInjection:
    """Kill the writer at each step; the previous file must survive."""

    def test_crash_before_rename_preserves_old_file(self, tmp_path,
                                                    monkeypatch):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"generation-1")

        def killed(src, dst):
            raise KeyboardInterrupt("simulated SIGKILL between tmp-write "
                                    "and rename")

        monkeypatch.setattr(os, "replace", killed)
        with pytest.raises(KeyboardInterrupt):
            atomic_write_bytes(path, b"generation-2")
        monkeypatch.undo()
        assert path.read_bytes() == b"generation-1"
        # and the aborted tmp file was cleaned up
        assert [p.name for p in tmp_path.iterdir()] == ["out.bin"]

    def test_crash_during_tmp_write_preserves_old_file(self, tmp_path,
                                                       monkeypatch):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"generation-1")

        def killed(fd):
            raise KeyboardInterrupt("simulated crash during fsync")

        monkeypatch.setattr(os, "fsync", killed)
        with pytest.raises(KeyboardInterrupt):
            atomic_write_bytes(path, b"generation-2")
        monkeypatch.undo()
        assert path.read_bytes() == b"generation-1"

    def test_crashed_checkpoint_write_keeps_previous_loadable(
            self, tmp_path, monkeypatch):
        """Tier-1 acceptance: a SIGKILL-simulated crash between tmp-write
        and rename never corrupts the latest loadable checkpoint."""
        path = tmp_path / "model.npz"
        state = {"weights": np.arange(6.0).reshape(2, 3)}
        save_checkpoint(path, state, meta={"epoch": 1})

        monkeypatch.setattr(
            os, "replace",
            lambda src, dst: (_ for _ in ()).throw(KeyboardInterrupt()))
        with pytest.raises(KeyboardInterrupt):
            save_checkpoint(path, {"weights": np.zeros((2, 3))},
                            meta={"epoch": 2})
        monkeypatch.undo()

        checkpoint = load_checkpoint(path)
        assert checkpoint.manifest.meta["epoch"] == 1
        np.testing.assert_array_equal(checkpoint.state["weights"],
                                      np.arange(6.0).reshape(2, 3))

    def test_partial_file_never_visible(self, tmp_path, monkeypatch):
        """Without a previous generation, a crashed write leaves nothing —
        not a half-written destination."""
        path = tmp_path / "model.npz"
        monkeypatch.setattr(
            os, "replace",
            lambda src, dst: (_ for _ in ()).throw(KeyboardInterrupt()))
        with pytest.raises(KeyboardInterrupt):
            save_checkpoint(path, {"w": np.ones(3)})
        monkeypatch.undo()
        assert not path.exists()
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(path)
