"""Shared fixtures for the checkpoint/persistence tests."""

import numpy as np
import pytest

from repro.config import ModelConfig, TrainConfig
from repro.core import HalkModel, Trainer
from repro.kg import KnowledgeGraph
from repro.queries import Entity, GroundedQuery, Projection, QueryWorkload


@pytest.fixture(scope="module")
def kg() -> KnowledgeGraph:
    rng = np.random.default_rng(7)
    triples = [(int(rng.integers(15)), int(rng.integers(2)),
                int(rng.integers(15))) for _ in range(40)]
    return KnowledgeGraph(15, 2, triples)


@pytest.fixture(scope="module")
def workload(kg) -> QueryWorkload:
    workload = QueryWorkload()
    for head, rel, _tail in list(kg)[:12]:
        query = Projection(rel, Entity(head))
        workload.add(GroundedQuery("1p", query,
                                   frozenset(kg.targets(head, rel)),
                                   frozenset()))
    return workload


def make_trainer(kg, workload, epochs: int,
                 two_speed: bool = False) -> tuple[HalkModel, Trainer]:
    """A fresh deterministic (model, trainer) pair."""
    model = HalkModel(kg, ModelConfig(embedding_dim=6, hidden_dim=12, seed=0))
    config = TrainConfig(epochs=epochs, batch_size=8, num_negatives=4,
                         seed=5,
                         embedding_learning_rate=5e-3 if two_speed else None)
    return model, Trainer(model, workload, config)
