"""Retention-manager tests: numbering, latest/best, pruning."""

import numpy as np
import pytest

from repro.ckpt import CheckpointManager, read_manifest

pytestmark = pytest.mark.ckpt


def state(value: float):
    return {"w": np.full(3, value)}


class TestManager:
    def test_save_and_latest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=5)
        for epoch, loss in ((1, 3.0), (2, 2.0), (3, 2.5)):
            manager.save(state(epoch), epoch=epoch, loss=loss)
        assert manager.latest() == manager.path_for(3)
        assert read_manifest(manager.latest()).meta["epoch"] == 3

    def test_best_is_lowest_loss(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=5)
        for epoch, loss in ((1, 3.0), (2, 0.5), (3, 2.5)):
            manager.save(state(epoch), epoch=epoch, loss=loss)
        assert manager.best() == manager.path_for(2)

    def test_retention_keeps_last_k_plus_best(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=2, keep_best=True)
        losses = {1: 0.1, 2: 3.0, 3: 2.0, 4: 1.5, 5: 1.2}
        for epoch, loss in losses.items():
            manager.save(state(epoch), epoch=epoch, loss=loss)
        kept = manager.checkpoints()
        # newest two (4, 5) plus the best-loss epoch 1
        assert kept == [manager.path_for(1), manager.path_for(4),
                        manager.path_for(5)]

    def test_retention_without_keep_best(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=2, keep_best=False)
        for epoch in (1, 2, 3, 4):
            manager.save(state(epoch), epoch=epoch, loss=float(5 - epoch))
        assert manager.checkpoints() == [manager.path_for(3),
                                         manager.path_for(4)]

    def test_latest_skips_unreadable(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=5)
        manager.save(state(1.0), epoch=1, loss=1.0)
        manager.save(state(2.0), epoch=2, loss=0.5)
        # corrupt the newest file (e.g. torn by a non-atomic copy)
        manager.path_for(2).write_bytes(b"garbage")
        assert manager.latest() == manager.path_for(1)

    def test_empty_directory(self, tmp_path):
        manager = CheckpointManager(tmp_path / "missing")
        assert manager.latest() is None
        assert manager.best() is None
        assert manager.checkpoints() == []

    def test_foreign_files_ignored(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=1)
        (tmp_path / "notes.txt").write_text("keep me")
        (tmp_path / "other-000001.npz").write_bytes(b"different prefix")
        manager.save(state(1.0), epoch=1, loss=1.0)
        manager.save(state(2.0), epoch=2, loss=1.0)
        assert (tmp_path / "notes.txt").exists()
        assert (tmp_path / "other-000001.npz").exists()

    def test_invalid_parameters(self, tmp_path):
        with pytest.raises(ValueError, match="keep_last"):
            CheckpointManager(tmp_path, keep_last=0)
        with pytest.raises(ValueError, match="prefix"):
            CheckpointManager(tmp_path, prefix="a/b")
