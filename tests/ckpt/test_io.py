"""Checkpoint format tests: manifest, checksum, nested-state round-trip."""

import json

import numpy as np
import pytest

from repro.ckpt import (FORMAT_VERSION, CheckpointError, load_checkpoint,
                        read_manifest, save_checkpoint)

pytestmark = pytest.mark.ckpt


def nested_state():
    return {
        "model": {"layer.weight": np.arange(12.0).reshape(3, 4),
                  "layer.bias": np.zeros(4)},
        "trainer": {
            "epoch": 7,
            "rng_state": {"bit_generator": "PCG64",
                          "state": {"state": 2 ** 100, "inc": 3},
                          "has_uint32": 0, "uinteger": 0},
            "optimizers": [{"step": 42, "m": [np.ones(3)],
                            "v": [np.full(3, 0.5)]}],
            "history": {"losses": [1.5, 0.25], "seconds": 12.0},
        },
        "flags": [True, None, "text"],
    }


class TestRoundTrip:
    def test_nested_state_survives(self, tmp_path):
        path = tmp_path / "c.npz"
        manifest = save_checkpoint(path, nested_state(), meta={"dim": 8})
        assert manifest.format_version == FORMAT_VERSION
        assert manifest.num_arrays == 4
        loaded = load_checkpoint(path)
        state = loaded.state
        np.testing.assert_array_equal(
            state["model"]["layer.weight"], np.arange(12.0).reshape(3, 4))
        assert state["trainer"]["epoch"] == 7
        # big ints (PCG64 state) survive the JSON structure blob exactly
        assert state["trainer"]["rng_state"]["state"]["state"] == 2 ** 100
        assert state["trainer"]["optimizers"][0]["step"] == 42
        assert state["trainer"]["history"]["losses"] == [1.5, 0.25]
        assert state["flags"] == [True, None, "text"]
        assert loaded.manifest.meta == {"dim": 8}

    def test_floats_roundtrip_bit_for_bit(self, tmp_path):
        path = tmp_path / "c.npz"
        values = [float(x) for x in np.random.default_rng(0).normal(size=20)]
        save_checkpoint(path, {"losses": values})
        assert load_checkpoint(path).state["losses"] == values

    def test_dtypes_preserved(self, tmp_path):
        path = tmp_path / "c.npz"
        state = {"i64": np.arange(3, dtype=np.int64),
                 "f32": np.ones(2, dtype=np.float32),
                 "scalar": np.float64(2.5)}
        loaded = load_checkpoint(save_and(path, state)).state
        assert loaded["i64"].dtype == np.int64
        assert loaded["f32"].dtype == np.float32
        assert loaded["scalar"] == 2.5

    def test_unserializable_leaf_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot checkpoint"):
            save_checkpoint(tmp_path / "c.npz", {"bad": object()})


def save_and(path, state):
    save_checkpoint(path, state)
    return path


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "absent.npz")

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "c.npz"
        save_checkpoint(path, {"w": np.ones(100)})
        path.write_bytes(path.read_bytes()[:150])
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path)

    def test_legacy_plain_npz_rejected_cleanly(self, tmp_path):
        path = tmp_path / "c.npz"
        np.savez(path, weights=np.ones(4))
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(path)

    def test_checksum_mismatch_detected(self, tmp_path):
        """Flip payload bytes while keeping the zip container valid."""
        path = tmp_path / "c.npz"
        save_checkpoint(path, {"w": np.zeros(8)}, meta={"epoch": 3})
        # rewrite one member through numpy, preserving the manifest
        with np.load(path) as handle:
            members = {name: np.array(handle[name])
                       for name in handle.files}
        members["s//w"] = np.ones(8)  # tampered payload
        np.savez(path, **members)
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            load_checkpoint(path)

    def test_newer_format_version_rejected(self, tmp_path):
        path = tmp_path / "c.npz"
        save_checkpoint(path, {"w": np.zeros(2)})
        with np.load(path) as handle:
            members = {name: np.array(handle[name])
                       for name in handle.files}
        manifest = json.loads(bytes(members["__manifest__"].tobytes()))
        manifest["format_version"] = FORMAT_VERSION + 1
        members["__manifest__"] = np.frombuffer(
            json.dumps(manifest).encode(), dtype=np.uint8)
        np.savez(path, **members)
        with pytest.raises(CheckpointError, match="newer than this build"):
            load_checkpoint(path)

    def test_expect_meta_mismatch(self, tmp_path):
        path = tmp_path / "c.npz"
        save_checkpoint(path, {"w": np.zeros(2)},
                        meta={"dataset": "FB237", "dim": 8})
        with pytest.raises(CheckpointError, match="dataset='FB237'"):
            load_checkpoint(path, expect={"dataset": "NELL"})
        # matching expectation loads fine
        assert load_checkpoint(
            path, expect={"dataset": "FB237", "dim": 8}).state is not None

    def test_read_manifest_is_cheap_and_validated(self, tmp_path):
        path = tmp_path / "c.npz"
        save_checkpoint(path, {"w": np.zeros(2)}, meta={"loss": 0.5})
        manifest = read_manifest(path)
        assert manifest.meta["loss"] == 0.5
        assert manifest.format_version == FORMAT_VERSION
