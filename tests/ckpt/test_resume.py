"""Resumable-training tests: state round-trips and bit-for-bit resume."""

import numpy as np
import pytest

from repro.ckpt import (CheckpointCallback, CheckpointError,
                        CheckpointManager, load_checkpoint, restore_training,
                        save_checkpoint, training_state)
from repro.nn import SGD, Adam
from repro.nn.modules import Linear

from .conftest import make_trainer

pytestmark = pytest.mark.ckpt


class TestOptimizerState:
    def _stepped(self, optimizer_cls, **kwargs):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        optimizer = optimizer_cls(layer.parameters(), **kwargs)
        for param in optimizer.parameters:
            param.grad = np.ones_like(param.data)
        optimizer.step()
        return layer, optimizer

    def test_adam_roundtrip(self):
        _, optimizer = self._stepped(Adam, lr=1e-3)
        state = optimizer.state_dict()
        fresh_layer = Linear(3, 2, rng=np.random.default_rng(1))
        fresh = Adam(fresh_layer.parameters(), lr=1e-3)
        fresh.load_state_dict(state)
        assert fresh._step == optimizer._step
        for a, b in zip(fresh._m, optimizer._m):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(fresh._v, optimizer._v):
            np.testing.assert_array_equal(a, b)

    def test_sgd_roundtrip(self):
        _, optimizer = self._stepped(SGD, lr=0.1, momentum=0.9)
        fresh_layer = Linear(3, 2, rng=np.random.default_rng(1))
        fresh = SGD(fresh_layer.parameters(), lr=0.1, momentum=0.9)
        fresh.load_state_dict(optimizer.state_dict())
        for a, b in zip(fresh._velocity, optimizer._velocity):
            np.testing.assert_array_equal(a, b)

    def test_state_is_a_copy(self):
        _, optimizer = self._stepped(Adam, lr=1e-3)
        state = optimizer.state_dict()
        state["m"][0][...] = 99.0
        assert not np.any(optimizer._m[0] == 99.0)

    def test_slot_count_mismatch_rejected(self):
        _, optimizer = self._stepped(Adam, lr=1e-3)
        state = optimizer.state_dict()
        state["m"] = state["m"][:-1]
        fresh = Adam(Linear(3, 2, rng=np.random.default_rng(1)).parameters(), lr=1e-3)
        with pytest.raises(ValueError, match="entries"):
            fresh.load_state_dict(state)

    def test_shape_mismatch_rejected_without_mutation(self):
        _, optimizer = self._stepped(Adam, lr=1e-3)
        state = optimizer.state_dict()
        state["v"] = [np.zeros((9, 9)) for _ in state["v"]]
        before_m = [m.copy() for m in optimizer._m]
        with pytest.raises(ValueError, match="shape"):
            optimizer.load_state_dict(state)
        for a, b in zip(optimizer._m, before_m):  # untouched on failure
            np.testing.assert_array_equal(a, b)


class TestTrainerState:
    def test_rng_state_roundtrips(self, kg, workload):
        _, trainer = make_trainer(kg, workload, epochs=3)
        trainer.train()
        state = trainer.state_dict()
        _, fresh = make_trainer(kg, workload, epochs=3)
        fresh.load_state_dict(state)
        assert (fresh.rng.bit_generator.state
                == trainer.rng.bit_generator.state)
        # both generators now produce the same stream
        assert list(fresh.rng.integers(0, 100, 8)) \
            == list(trainer.rng.integers(0, 100, 8))

    def test_history_roundtrips(self, kg, workload):
        _, trainer = make_trainer(kg, workload, epochs=2)
        history = trainer.train()
        _, fresh = make_trainer(kg, workload, epochs=2)
        fresh.load_state_dict(trainer.state_dict())
        assert fresh.history.losses == history.losses
        assert fresh.history.epoch_losses == history.epoch_losses
        assert fresh._epochs_done == 2

    def test_optimizer_regime_mismatch_rejected(self, kg, workload):
        _, one_speed = make_trainer(kg, workload, epochs=2)
        one_speed.train()
        _, two_speed = make_trainer(kg, workload, epochs=2, two_speed=True)
        with pytest.raises(ValueError, match="optimizer states"):
            two_speed.load_state_dict(one_speed.state_dict())

    def test_epoch_beyond_config_rejected(self, kg, workload):
        _, trainer = make_trainer(kg, workload, epochs=3)
        trainer.train()
        _, shorter = make_trainer(kg, workload, epochs=2)
        with pytest.raises(ValueError, match="beyond"):
            shorter.load_state_dict(trainer.state_dict())


class TestResumeDeterminism:
    def test_interrupt_resume_matches_uninterrupted(self, kg, workload,
                                                    tmp_path):
        """Acceptance: train(10) == train(5) -> checkpoint -> resume ->
        train(5), per-step losses bit-for-bit, for both optimizer
        regimes."""
        for two_speed in (False, True):
            _, full_trainer = make_trainer(kg, workload, epochs=10,
                                           two_speed=two_speed)
            full = full_trainer.train()

            _, half = make_trainer(kg, workload, epochs=5,
                                   two_speed=two_speed)
            half.train()
            path = tmp_path / f"half-{two_speed}.npz"
            save_checkpoint(path, training_state(half))

            model, resumed_trainer = make_trainer(kg, workload, epochs=10,
                                                  two_speed=two_speed)
            restore_training(resumed_trainer, path)
            resumed = resumed_trainer.train()

            assert resumed.losses == full.losses
            assert resumed.epoch_losses == full.epoch_losses
            for name, param in model.named_parameters():
                np.testing.assert_array_equal(
                    param.data,
                    dict(full_trainer.model.named_parameters())[name].data)

    def test_resume_from_any_epoch_boundary(self, kg, workload, tmp_path):
        _, full_trainer = make_trainer(kg, workload, epochs=6)
        full = full_trainer.train()
        for cut in (1, 3, 5):
            _, partial = make_trainer(kg, workload, epochs=cut)
            partial.train()
            path = tmp_path / f"cut{cut}.npz"
            save_checkpoint(path, training_state(partial))
            _, resumed_trainer = make_trainer(kg, workload, epochs=6)
            restore_training(resumed_trainer, path)
            assert resumed_trainer.train().losses == full.losses

    def test_restore_validates_meta(self, kg, workload, tmp_path):
        _, trainer = make_trainer(kg, workload, epochs=2)
        trainer.train()
        path = tmp_path / "c.npz"
        save_checkpoint(path, training_state(trainer),
                        meta={"dataset": "toy"})
        _, fresh = make_trainer(kg, workload, epochs=2)
        with pytest.raises(CheckpointError, match="dataset"):
            restore_training(fresh, path, expect={"dataset": "other"})

    def test_restore_rejects_model_only_checkpoint(self, kg, workload,
                                                   tmp_path):
        model, trainer = make_trainer(kg, workload, epochs=2)
        path = tmp_path / "m.npz"
        save_checkpoint(path, {"model": model.state_dict()})
        with pytest.raises(CheckpointError, match="training checkpoint"):
            restore_training(trainer, path)


class TestCheckpointCallback:
    def test_writes_on_interval_with_retention(self, kg, workload, tmp_path):
        model, trainer = make_trainer(kg, workload, epochs=6)
        callback = CheckpointCallback(tmp_path, every=2, keep_last=2,
                                      keep_best=False,
                                      meta={"dataset": "toy"})
        trainer.callbacks.callbacks.append(callback)
        trainer.train()
        manager = CheckpointManager(tmp_path, keep_last=2)
        kept = manager.checkpoints()
        assert kept == [manager.path_for(4), manager.path_for(6)]
        checkpoint = load_checkpoint(kept[-1])
        assert checkpoint.manifest.meta["dataset"] == "toy"
        assert checkpoint.manifest.meta["epoch"] == 6
        assert checkpoint.state["trainer"]["epoch"] == 6

    def test_final_epoch_saved_off_interval(self, kg, workload, tmp_path):
        _, trainer = make_trainer(kg, workload, epochs=5)
        callback = CheckpointCallback(tmp_path, every=2, keep_last=10)
        trainer.callbacks.callbacks.append(callback)
        trainer.train()
        manager = CheckpointManager(tmp_path, keep_last=10)
        # epochs 2 and 4 on the interval, 5 from on_train_end
        assert manager.path_for(5).exists()

    def test_callback_checkpoint_resumes_exactly(self, kg, workload,
                                                 tmp_path):
        _, full_trainer = make_trainer(kg, workload, epochs=8)
        full = full_trainer.train()

        _, half = make_trainer(kg, workload, epochs=4)
        callback = CheckpointCallback(tmp_path, every=4)
        half.callbacks.callbacks.append(callback)
        half.train()

        latest = CheckpointManager(tmp_path).latest()
        _, resumed_trainer = make_trainer(kg, workload, epochs=8)
        restore_training(resumed_trainer, latest)
        assert resumed_trainer.train().losses == full.losses
