"""Tests for the query-structure registry."""

import pytest

from repro.queries import (DIFFERENCE_STRUCTURES, EPFO_STRUCTURES,
                           EVAL_ONLY_STRUCTURES, LARGE_STRUCTURES,
                           NEGATION_STRUCTURES, QUERY_SIZE_STRUCTURES,
                           STRUCTURES, TRAIN_STRUCTURES, Difference,
                           Intersection, Negation, Projection, QueryStructure,
                           Union, Entity, get_structure, iter_nodes)


class TestRegistry:
    def test_sixteen_basic_structures_present(self):
        basic = {"1p", "2p", "3p", "2i", "3i", "ip", "pi", "2u", "up",
                 "2d", "3d", "dp", "2in", "3in", "pin", "pni"}
        assert basic <= set(STRUCTURES)

    def test_large_structures_present(self):
        assert set(LARGE_STRUCTURES) <= set(STRUCTURES)

    def test_get_structure_unknown(self):
        with pytest.raises(KeyError):
            get_structure("42p")

    def test_train_eval_split_disjoint(self):
        assert not set(TRAIN_STRUCTURES) & set(EVAL_ONLY_STRUCTURES)

    def test_groups_are_consistent(self):
        assert set(EPFO_STRUCTURES) <= set(STRUCTURES)
        assert set(DIFFERENCE_STRUCTURES) <= set(STRUCTURES)
        assert set(NEGATION_STRUCTURES) <= set(STRUCTURES)


class TestShapes:
    @pytest.mark.parametrize("name,size", [
        ("1p", 1), ("2p", 2), ("3p", 3), ("2i", 2), ("3i", 3),
        ("ip", 3), ("pi", 3), ("2u", 2), ("up", 3),
        ("2d", 2), ("3d", 3), ("dp", 3),
        ("2in", 2), ("3in", 3), ("pin", 3), ("pni", 3),
    ])
    def test_basic_structure_sizes(self, name, size):
        assert get_structure(name).size == size

    def test_query_size_table_vi_progression(self):
        # Table VI uses one structure per query size 1..5.
        sizes = [get_structure(n).size for n in QUERY_SIZE_STRUCTURES]
        assert sizes == [1, 2, 3, 4, 5]

    @pytest.mark.parametrize("name", ["2d", "3d", "dp", "2ippd", "3ippd"])
    def test_difference_structures_contain_difference(self, name):
        nodes = list(iter_nodes(get_structure(name).template))
        assert any(isinstance(n, Difference) for n in nodes)

    @pytest.mark.parametrize("name", NEGATION_STRUCTURES)
    def test_negation_structures_contain_negation(self, name):
        nodes = list(iter_nodes(get_structure(name).template))
        assert any(isinstance(n, Negation) for n in nodes)

    @pytest.mark.parametrize("name", ["2u", "up", "2ippu", "3ippu"])
    def test_union_structures_contain_union(self, name):
        nodes = list(iter_nodes(get_structure(name).template))
        assert any(isinstance(n, Union) for n in nodes)

    def test_anchor_slots_are_dense(self):
        for structure in STRUCTURES.values():
            anchor_ids = sorted(n.entity for n in iter_nodes(structure.template)
                                if isinstance(n, Entity))
            assert anchor_ids == list(range(structure.num_anchors))

    def test_relation_slots_are_dense(self):
        for structure in STRUCTURES.values():
            rel_ids = sorted(n.relation for n in iter_nodes(structure.template)
                             if isinstance(n, Projection))
            assert rel_ids == list(range(structure.num_relations))


class TestValidation:
    def test_rejects_repeated_anchor_slot(self):
        template = Intersection((Projection(0, Entity(0)),
                                 Projection(1, Entity(0))))
        with pytest.raises(ValueError):
            QueryStructure("bad", template)

    def test_rejects_repeated_relation_slot(self):
        template = Intersection((Projection(0, Entity(0)),
                                 Projection(0, Entity(1))))
        with pytest.raises(ValueError):
            QueryStructure("bad", template)
