"""Tests for computation-graph node types and DNF rewriting."""

import pytest

from repro.kg import KnowledgeGraph
from repro.queries import (Difference, Entity, Intersection, Negation,
                           Projection, Union, anchors, execute, iter_nodes,
                           query_size, relations, rename, to_dnf)


class TestNodes:
    def test_nodes_are_hashable(self):
        q1 = Projection(0, Entity(1))
        q2 = Projection(0, Entity(1))
        assert q1 == q2
        assert hash(q1) == hash(q2)

    def test_intersection_arity(self):
        with pytest.raises(ValueError):
            Intersection((Entity(0),))

    def test_union_arity(self):
        with pytest.raises(ValueError):
            Union((Entity(0),))

    def test_difference_arity(self):
        with pytest.raises(ValueError):
            Difference((Entity(0),))

    def test_iter_nodes_preorder(self):
        q = Intersection((Projection(0, Entity(1)), Entity(2)))
        kinds = [type(n).__name__ for n in iter_nodes(q)]
        assert kinds == ["Intersection", "Projection", "Entity", "Entity"]

    def test_anchors_and_relations_order(self):
        q = Projection(7, Intersection((Projection(3, Entity(5)), Entity(9))))
        assert anchors(q) == [5, 9]
        assert relations(q) == [7, 3]

    def test_query_size_counts_projections(self):
        q = Projection(0, Intersection((Projection(1, Entity(0)),
                                        Negation(Projection(2, Entity(1))))))
        assert query_size(q) == 3

    def test_rename(self):
        q = Projection(0, Entity(1))
        renamed = rename(q, entity_map=lambda e: e + 10,
                         relation_map=lambda r: r + 100)
        assert renamed == Projection(100, Entity(11))


@pytest.fixture
def kg() -> KnowledgeGraph:
    # A 6-entity graph with two relations forming a small two-hop world.
    return KnowledgeGraph(6, 2, [
        (0, 0, 1), (0, 0, 2), (1, 1, 3), (2, 1, 3), (2, 1, 4), (5, 0, 4),
    ])


def answers_equal(query, kg):
    """Answers must be identical before and after DNF rewriting."""
    direct = execute(query, kg)
    via_dnf = set()
    for branch in to_dnf(query):
        via_dnf |= execute(branch, kg)
    return direct == via_dnf


class TestDNF:
    def test_entity_passthrough(self):
        assert to_dnf(Entity(3)) == [Entity(3)]

    def test_union_splits(self):
        q = Union((Entity(0), Entity(1)))
        assert to_dnf(q) == [Entity(0), Entity(1)]

    def test_projection_distributes_over_union(self):
        q = Projection(0, Union((Entity(0), Entity(1))))
        assert to_dnf(q) == [Projection(0, Entity(0)), Projection(0, Entity(1))]

    def test_intersection_cross_product(self):
        q = Intersection((Union((Entity(0), Entity(1))),
                          Union((Entity(2), Entity(3)))))
        branches = to_dnf(q)
        assert len(branches) == 4
        assert all(isinstance(b, Intersection) for b in branches)

    def test_difference_with_union_second_flattens(self, kg):
        q = Difference((Projection(0, Entity(0)),
                        Union((Entity(1), Entity(2)))))
        branches = to_dnf(q)
        assert len(branches) == 1
        assert isinstance(branches[0], Difference)
        assert len(branches[0].operands) == 3
        assert answers_equal(q, kg)

    def test_difference_with_union_first_splits(self, kg):
        q = Difference((Union((Projection(0, Entity(0)), Entity(5))),
                        Entity(1)))
        branches = to_dnf(q)
        assert len(branches) == 2
        assert answers_equal(q, kg)

    def test_negation_de_morgan(self, kg):
        q = Negation(Union((Entity(0), Entity(1))))
        branches = to_dnf(q)
        assert len(branches) == 1
        assert isinstance(branches[0], Intersection)
        assert answers_equal(q, kg)

    def test_union_free_query_is_single_branch(self):
        q = Intersection((Projection(0, Entity(0)),
                          Negation(Projection(1, Entity(1)))))
        assert to_dnf(q) == [q]

    @pytest.mark.parametrize("query", [
        Projection(1, Union((Projection(0, Entity(0)), Projection(0, Entity(5))))),
        Union((Projection(0, Entity(0)), Projection(1, Entity(2)))),
        Intersection((Union((Projection(0, Entity(0)), Entity(4))),
                      Projection(1, Entity(2)))),
    ])
    def test_dnf_preserves_semantics(self, query, kg):
        assert answers_equal(query, kg)

    def test_nested_intersections_flattened(self):
        q = Intersection((Union((Intersection((Entity(0), Entity(1))),
                                 Entity(2))),
                          Entity(3)))
        for branch in to_dnf(q):
            if isinstance(branch, Intersection):
                assert not any(isinstance(op, Intersection)
                               for op in branch.operands)
