"""Tests for the exact set-semantics executor."""

import pytest

from repro.kg import KnowledgeGraph
from repro.queries import (Difference, Entity, Intersection, Negation,
                           Projection, Union, answer_sets, execute)


@pytest.fixture
def kg() -> KnowledgeGraph:
    # relations: 0 = "directs", 1 = "winner"
    # 0,1 direct films 2,3,4 ; entity 5 "won" 0 and 1 "won" nothing
    return KnowledgeGraph(6, 2, [
        (0, 0, 2), (0, 0, 3), (1, 0, 3), (1, 0, 4), (5, 1, 0),
    ])


class TestExecute:
    def test_entity(self, kg):
        assert execute(Entity(3), kg) == {3}

    def test_entity_out_of_range(self, kg):
        with pytest.raises(ValueError):
            execute(Entity(99), kg)

    def test_projection(self, kg):
        assert execute(Projection(0, Entity(0)), kg) == {2, 3}

    def test_projection_empty(self, kg):
        assert execute(Projection(1, Entity(3)), kg) == set()

    def test_two_hop(self, kg):
        # films directed by people that entity 5 picked as winners
        q = Projection(0, Projection(1, Entity(5)))
        assert execute(q, kg) == {2, 3}

    def test_intersection(self, kg):
        q = Intersection((Projection(0, Entity(0)), Projection(0, Entity(1))))
        assert execute(q, kg) == {3}

    def test_intersection_short_circuits_empty(self, kg):
        q = Intersection((Projection(1, Entity(3)), Projection(0, Entity(0))))
        assert execute(q, kg) == set()

    def test_union(self, kg):
        q = Union((Projection(0, Entity(0)), Projection(0, Entity(1))))
        assert execute(q, kg) == {2, 3, 4}

    def test_difference(self, kg):
        q = Difference((Projection(0, Entity(0)), Projection(0, Entity(1))))
        assert execute(q, kg) == {2}

    def test_difference_multiple_subtrahends(self, kg):
        q = Difference((Union((Projection(0, Entity(0)), Projection(0, Entity(1)))),
                        Entity(2), Entity(4)))
        assert execute(q, kg) == {3}

    def test_negation_is_complement(self, kg):
        q = Negation(Projection(0, Entity(0)))
        assert execute(q, kg) == {0, 1, 4, 5}

    def test_negation_with_intersection(self, kg):
        # films by 1 that were not made by 0
        q = Intersection((Projection(0, Entity(1)),
                          Negation(Projection(0, Entity(0)))))
        assert execute(q, kg) == {4}

    def test_difference_vs_negation_equivalence(self, kg):
        # B − C == B ∩ ¬C (paper Fig. 2 discussion)
        b = Projection(0, Entity(0))
        c = Projection(0, Entity(1))
        assert (execute(Difference((b, c)), kg)
                == execute(Intersection((b, Negation(c))), kg))

    def test_answer_sets_multi_graph(self, kg):
        bigger = kg.merge(KnowledgeGraph(6, 2, [(0, 0, 4)]))
        q = Projection(0, Entity(0))
        small, large = answer_sets(q, kg, bigger)
        assert small == {2, 3}
        assert large == {2, 3, 4}

    def test_unknown_node_type_raises(self, kg):
        with pytest.raises(TypeError):
            execute("not a node", kg)
