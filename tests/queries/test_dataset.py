"""Tests for the workload container and the 1p coverage guarantee."""

import pytest

from repro.kg import fb237_mini
from repro.queries import (Entity, GroundedQuery, Projection, QueryWorkload,
                           build_workloads)
from repro.queries.dataset import _all_link_queries


@pytest.fixture(scope="module")
def splits():
    return fb237_mini(scale=0.3)


class TestQueryWorkload:
    def test_add_and_getitem(self):
        workload = QueryWorkload()
        q = GroundedQuery("1p", Projection(0, Entity(0)),
                          frozenset({1}), frozenset())
        workload.add(q)
        assert workload["1p"] == [q]
        assert "1p" in workload
        assert "2p" not in workload

    def test_structures_sorted(self):
        workload = QueryWorkload()
        for name in ("2p", "1p", "3i"):
            workload.add(GroundedQuery(name, Entity(0), frozenset({0}),
                                       frozenset()))
        assert workload.structures() == ["1p", "2p", "3i"]

    def test_total_and_iter_agree(self):
        workload = QueryWorkload()
        for i in range(5):
            workload.add(GroundedQuery("1p", Entity(i), frozenset({i}),
                                       frozenset()))
        assert workload.total() == 5
        assert len(list(workload)) == 5


class TestAllLinkQueries:
    def test_covers_every_head_relation_pair(self, splits):
        queries = list(_all_link_queries(splits))
        pairs = {(q.query.operand.entity, q.query.relation) for q in queries}
        expected = {(h, r) for h, r, _ in splits.train.triples}
        assert pairs == expected

    def test_answers_are_exact_targets(self, splits):
        for query in list(_all_link_queries(splits))[:25]:
            head = query.query.operand.entity
            rel = query.query.relation
            assert set(query.easy_answers) == set(
                splits.train.targets(head, rel))

    def test_no_duplicates(self, splits):
        queries = list(_all_link_queries(splits))
        assert len({q.query for q in queries}) == len(queries)


class TestBuildWorkloadsOptions:
    def test_per_structure_counts(self, splits):
        bundle = build_workloads(
            splits,
            train_structures=("2p", "2i"),
            eval_structures=("2p",),
            queries_per_structure={"2p": 5, "2i": 3},
            eval_queries_per_structure=2, seed=0, all_1p=False)
        assert len(bundle.train["2p"]) <= 5
        assert len(bundle.train["2i"]) <= 3
        assert "1p" not in bundle.train

    def test_all_1p_flag(self, splits):
        with_1p = build_workloads(splits, train_structures=("1p",),
                                  eval_structures=("1p",),
                                  queries_per_structure=5,
                                  eval_queries_per_structure=2, seed=0,
                                  all_1p=True)
        without = build_workloads(splits, train_structures=("1p",),
                                  eval_structures=("1p",),
                                  queries_per_structure=5,
                                  eval_queries_per_structure=2, seed=0,
                                  all_1p=False)
        assert len(with_1p.train["1p"]) > len(without.train["1p"])

    def test_custom_eval_structures(self, splits):
        bundle = build_workloads(splits, train_structures=("1p",),
                                 eval_structures=("2u",),
                                 queries_per_structure=5,
                                 eval_queries_per_structure=2, seed=0)
        assert bundle.test.structures() == ["2u"]
