"""Tests for computation-graph rendering."""

import pytest

from repro.kg import KnowledgeGraph
from repro.queries import (Difference, Entity, Intersection, Negation,
                           Projection, Union)
from repro.queries.printing import to_text, to_tree


@pytest.fixture
def kg() -> KnowledgeGraph:
    return KnowledgeGraph(3, 2, [(0, 0, 1)],
                          entity_names=["oscar", "spielberg", "jaws"],
                          relation_names=["won_by", "directed"])


class TestToText:
    def test_entity(self):
        assert to_text(Entity(3)) == "e3"

    def test_projection(self):
        assert to_text(Projection(1, Entity(3))) == "P[r1](e3)"

    def test_nested_operators(self):
        query = Intersection((Projection(0, Entity(1)),
                              Negation(Projection(1, Entity(2)))))
        assert to_text(query) == "I(P[r0](e1), N(P[r1](e2)))"

    def test_union_and_difference_letters(self):
        assert to_text(Union((Entity(0), Entity(1)))) == "U(e0, e1)"
        assert to_text(Difference((Entity(0), Entity(1)))) == "D(e0, e1)"

    def test_names_resolved_with_kg(self, kg):
        query = Projection(1, Projection(0, Entity(0)))
        assert to_text(query, kg) == "P[directed](P[won_by](oscar))"


class TestToTree:
    def test_single_entity(self):
        assert to_tree(Entity(5)) == "entity e5"

    def test_projection_chain_depth(self):
        tree = to_tree(Projection(1, Projection(0, Entity(0))))
        lines = tree.splitlines()
        assert lines[0].startswith("projection")
        assert len(lines) == 3

    def test_intersection_children_marked(self):
        tree = to_tree(Intersection((Entity(0), Entity(1), Entity(2))))
        assert tree.count("├── ") == 2
        assert tree.count("└── ") == 1

    def test_names_resolved(self, kg):
        tree = to_tree(Projection(0, Entity(0)), kg)
        assert "won_by" in tree
        assert "oscar" in tree

    def test_every_node_rendered(self):
        query = Difference((Union((Entity(0), Entity(1))),
                            Negation(Projection(0, Entity(2)))))
        tree = to_tree(query)
        for token in ("difference", "union", "negation", "projection",
                      "entity e0", "entity e1", "entity e2"):
            assert token in tree
