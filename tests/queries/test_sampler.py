"""Tests for backward grounding and the query workload builder."""

import numpy as np
import pytest

from repro.kg import fb237_mini
from repro.queries import (STRUCTURES, GroundedQuery, QuerySampler,
                           SamplerConfig, batches, build_workloads, execute,
                           get_structure)


@pytest.fixture(scope="module")
def splits():
    return fb237_mini(scale=0.5)


@pytest.fixture(scope="module")
def train_sampler(splits):
    return QuerySampler(splits.train, seed=0)


class TestSample:
    @pytest.mark.parametrize("name", sorted(STRUCTURES))
    def test_all_structures_groundable(self, train_sampler, name):
        grounded = train_sampler.sample(get_structure(name))
        assert grounded.structure == name
        assert grounded.easy_answers

    def test_answers_match_executor(self, splits, train_sampler):
        grounded = train_sampler.sample(get_structure("2i"))
        assert set(grounded.easy_answers) == execute(grounded.query, splits.train)

    def test_train_sampler_has_no_hard_answers(self, train_sampler):
        grounded = train_sampler.sample(get_structure("2p"))
        assert not grounded.hard_answers

    def test_eval_sampler_produces_hard_answers(self, splits):
        sampler = QuerySampler(splits.valid, splits.test, seed=1,
                               config=SamplerConfig(require_hard_answer=True))
        grounded = sampler.sample(get_structure("1p"))
        assert grounded.hard_answers
        assert not grounded.hard_answers & grounded.easy_answers

    def test_answer_cap_respected(self, splits):
        sampler = QuerySampler(splits.train, seed=2,
                               config=SamplerConfig(max_answer_fraction=0.1))
        grounded = sampler.sample(get_structure("2in"))
        assert len(grounded.all_answers) <= 0.1 * splits.train.num_entities

    def test_observed_must_be_subgraph(self, splits):
        with pytest.raises(ValueError):
            QuerySampler(splits.test, splits.train)

    def test_deterministic_given_seed(self, splits):
        a = QuerySampler(splits.train, seed=9).sample(get_structure("2p"))
        b = QuerySampler(splits.train, seed=9).sample(get_structure("2p"))
        assert a.query == b.query


class TestSampleMany:
    def test_dedupe(self, train_sampler):
        queries = train_sampler.sample_many(get_structure("1p"), 20)
        assert len({q.query for q in queries}) == len(queries)

    def test_count_respected(self, train_sampler):
        queries = train_sampler.sample_many(get_structure("2i"), 10)
        assert 1 <= len(queries) <= 10


class TestWorkloads:
    def test_build_workloads_protocol(self, splits):
        bundle = build_workloads(splits, queries_per_structure=5,
                                 eval_queries_per_structure=3, seed=0)
        # zero-shot structures are absent from training
        for name in ("ip", "pi", "2u", "up", "dp"):
            assert name not in bundle.train
            assert name in bundle.test
        # every test query has at least one hard answer
        for query in bundle.test:
            assert query.hard_answers

    def test_workload_iteration_and_total(self, splits):
        bundle = build_workloads(splits, queries_per_structure=4,
                                 eval_queries_per_structure=2, seed=1)
        assert bundle.train.total() == sum(1 for _ in bundle.train)

    def test_batches_partition(self):
        queries = [GroundedQuery("1p", None, frozenset({i}), frozenset())
                   for i in range(10)]
        got = list(batches(queries, 3, shuffle=False))
        assert [len(b) for b in got] == [3, 3, 3, 1]
        flat = [q for batch in got for q in batch]
        assert flat == queries

    def test_batches_shuffle_deterministic_with_rng(self):
        queries = [GroundedQuery("1p", None, frozenset({i}), frozenset())
                   for i in range(10)]
        a = list(batches(queries, 4, rng=np.random.default_rng(0)))
        b = list(batches(queries, 4, rng=np.random.default_rng(0)))
        assert [[q.easy_answers for q in batch] for batch in a] == \
               [[q.easy_answers for q in batch] for batch in b]

    def test_batches_rejects_bad_size(self):
        with pytest.raises(ValueError):
            list(batches([], 0))
