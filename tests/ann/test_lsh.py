"""Tests for LSH and brute-force answer retrieval."""

import numpy as np
import pytest

from repro.ann import BruteForceIndex, LshIndex


@pytest.fixture(scope="module")
def points() -> np.ndarray:
    return np.random.default_rng(0).uniform(0, 2 * np.pi, size=(200, 8))


class TestBruteForce:
    def test_query_returns_top_k(self, points):
        index = BruteForceIndex(points)
        out = index.query(points[5], top_k=4)
        assert len(out) == 4
        assert out[0] == 5  # a stored point is its own nearest neighbour

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            BruteForceIndex(np.zeros(3))

    def test_ordering_by_distance(self, points):
        index = BruteForceIndex(points)
        query = points[0]
        out = index.query(query, top_k=10)
        dists = [np.abs(np.sin((points[i] - query) / 2)).sum() for i in out]
        assert dists == sorted(dists)


class TestLsh:
    def test_validation(self, points):
        with pytest.raises(ValueError):
            LshIndex(np.zeros(3))
        with pytest.raises(ValueError):
            LshIndex(points, num_tables=0)

    def test_bits_per_table_int64_boundary(self, points):
        # 62 bits is the widest hash whose bucket keys fit in int64
        index = LshIndex(points, num_tables=1, bits_per_table=62, seed=1)
        assert all(key >= 0 for key in index._tables[0])
        with pytest.raises(ValueError, match="bits_per_table must be < 63"):
            LshIndex(points, num_tables=1, bits_per_table=63, seed=1)
        with pytest.raises(ValueError, match="overflows"):
            LshIndex(points, num_tables=1, bits_per_table=64, seed=1)

    def test_exact_point_is_candidate(self, points):
        index = LshIndex(points, num_tables=6, bits_per_table=6, seed=1)
        for i in (0, 50, 199):
            assert i in index.candidates(points[i])

    def test_query_finds_self(self, points):
        index = LshIndex(points, num_tables=6, bits_per_table=6, seed=1)
        assert index.query(points[7], top_k=1)[0] == 7

    def test_fallback_guarantees_k_results(self, points):
        # absurdly wide hash: buckets tiny, fallback must fill the gap
        index = LshIndex(points, num_tables=1, bits_per_table=16, seed=2)
        out = index.query(points[3], top_k=12, fallback=True)
        assert len(out) == 12

    def test_recall_reasonable(self, points):
        index = LshIndex(points, num_tables=12, bits_per_table=4, seed=3)
        recall = index.recall_at_k(points[:20], top_k=5)
        assert recall > 0.5

    def test_more_tables_no_worse_recall(self, points):
        few = LshIndex(points, num_tables=2, bits_per_table=6, seed=4)
        many = LshIndex(points, num_tables=16, bits_per_table=6, seed=4)
        queries = points[:15]
        assert many.recall_at_k(queries, 5) >= few.recall_at_k(queries, 5)

    def test_candidates_shrink_with_more_bits(self, points):
        coarse = LshIndex(points, num_tables=4, bits_per_table=2, seed=5)
        fine = LshIndex(points, num_tables=4, bits_per_table=10, seed=5)
        coarse_sizes = np.mean([len(coarse.candidates(p)) for p in points[:10]])
        fine_sizes = np.mean([len(fine.candidates(p)) for p in points[:10]])
        assert fine_sizes < coarse_sizes

    def test_agrees_with_brute_force_under_fallback(self, points):
        lsh = LshIndex(points, num_tables=1, bits_per_table=20, seed=6)
        brute = BruteForceIndex(points)
        # fallback path degrades to exact search
        assert lsh.query(points[9], top_k=5) == brute.query(points[9], top_k=5)
