"""Tests for the SPARQL → logical-operator Adaptor."""

import pytest

from repro.kg import KnowledgeGraph
from repro.queries import (Difference, Entity, Intersection, Negation,
                           Projection, Union, execute)
from repro.sparql import Adaptor, UnsupportedPatternError, parse_sparql


@pytest.fixture
def kg() -> KnowledgeGraph:
    return KnowledgeGraph(
        5, 3,
        [(0, 0, 1), (1, 1, 2), (1, 1, 3), (0, 2, 3), (2, 1, 4)],
        entity_names=["oscar", "spielberg", "jaws", "et", "duel"],
        relation_names=["winner", "directed", "produced"])


@pytest.fixture
def adaptor(kg) -> Adaptor:
    return Adaptor(kg)


def adapt(adaptor, text):
    return adaptor.to_computation_graph(parse_sparql(text))


class TestBasicMapping:
    def test_single_triple_is_projection(self, adaptor):
        node = adapt(adaptor, "SELECT ?x WHERE { oscar winner ?x . }")
        assert node == Projection(0, Entity(0))

    def test_chain_is_nested_projection(self, adaptor):
        node = adapt(adaptor,
                     "SELECT ?f WHERE { oscar winner ?d . ?d directed ?f . }")
        assert node == Projection(1, Projection(0, Entity(0)))

    def test_shared_variable_is_intersection(self, adaptor):
        node = adapt(adaptor,
                     "SELECT ?f WHERE { spielberg directed ?f . "
                     "oscar produced ?f . }")
        assert isinstance(node, Intersection)
        assert len(node.operands) == 2

    def test_union_maps_to_union(self, adaptor):
        node = adapt(adaptor,
                     "SELECT ?x WHERE { { oscar winner ?x } UNION "
                     "{ spielberg directed ?x } }")
        assert isinstance(node, Union)

    def test_not_exists_maps_to_negation(self, adaptor):
        node = adapt(adaptor,
                     "SELECT ?x WHERE { spielberg directed ?x . "
                     "FILTER NOT EXISTS { oscar produced ?x } }")
        assert isinstance(node, Intersection)
        assert any(isinstance(op, Negation) for op in node.operands)

    def test_minus_maps_to_difference(self, adaptor):
        node = adapt(adaptor,
                     "SELECT ?x WHERE { spielberg directed ?x . "
                     "MINUS { oscar produced ?x } }")
        assert isinstance(node, Difference)

    def test_adapted_graph_executes_correctly(self, adaptor, kg):
        node = adapt(adaptor,
                     "SELECT ?x WHERE { spielberg directed ?x . "
                     "MINUS { oscar produced ?x } }")
        assert execute(node, kg) == {2}  # jaws (et is subtracted)


class TestInverseOrientation:
    def test_subject_variable_without_inverse_rejected(self, adaptor):
        with pytest.raises(UnsupportedPatternError, match="no inverse"):
            adapt(adaptor, "SELECT ?d WHERE { ?d directed jaws . }")

    def test_subject_variable_with_inverse_rewrites(self, kg):
        # declare relation 2 ("produced") as the inverse of "directed"
        adaptor = Adaptor(kg, inverse_relations={1: 2})
        node = adapt(adaptor, "SELECT ?d WHERE { ?d directed jaws . }")
        assert node == Projection(2, Entity(2))


class TestErrors:
    def test_unknown_entity(self, adaptor):
        with pytest.raises(UnsupportedPatternError, match="unknown entity"):
            adapt(adaptor, "SELECT ?x WHERE { nolan directed ?x . }")

    def test_unknown_relation(self, adaptor):
        with pytest.raises(UnsupportedPatternError, match="unknown relation"):
            adapt(adaptor, "SELECT ?x WHERE { oscar knighted ?x . }")

    def test_unbound_variable(self, adaptor):
        with pytest.raises(UnsupportedPatternError, match="no positive"):
            adapt(adaptor, "SELECT ?x WHERE { oscar winner ?y . }")

    def test_cyclic_pattern_rejected(self, kg):
        # a cycle leaves the inner variable with no usable binding
        adaptor = Adaptor(kg, inverse_relations={0: 0, 1: 1})
        with pytest.raises(UnsupportedPatternError):
            adapt(adaptor,
                  "SELECT ?x WHERE { ?y winner ?x . ?x winner ?y . }")
