"""Tests for the SPARQL subset parser."""

import pytest

from repro.sparql import SparqlSyntaxError, parse_sparql


class TestBasicParsing:
    def test_single_triple(self):
        query = parse_sparql("SELECT ?x WHERE { Oscar winner ?x . }")
        assert query.variable == "?x"
        assert len(query.where.triples) == 1
        triple = query.where.triples[0]
        assert (triple.subject, triple.predicate, triple.object) == \
            ("Oscar", "winner", "?x")

    def test_multiple_triples(self):
        query = parse_sparql("""
            SELECT ?f WHERE {
                Oscar winner ?d .
                ?d directed ?f .
            }
        """)
        assert len(query.where.triples) == 2

    def test_trailing_dot_optional(self):
        query = parse_sparql("SELECT ?x WHERE { A r ?x }")
        assert len(query.where.triples) == 1

    def test_case_insensitive_keywords(self):
        query = parse_sparql("select ?x where { A r ?x . }")
        assert query.variable == "?x"

    def test_variables_collected(self):
        query = parse_sparql("SELECT ?f WHERE { Oscar winner ?d . ?d directed ?f . }")
        assert query.where.variables() == {"?d", "?f"}


class TestSetOperators:
    def test_filter_not_exists(self):
        query = parse_sparql("""
            SELECT ?x WHERE {
                A r ?x .
                FILTER NOT EXISTS { B s ?x . }
            }
        """)
        assert len(query.where.not_exists) == 1
        assert len(query.where.not_exists[0].group.triples) == 1

    def test_minus(self):
        query = parse_sparql("""
            SELECT ?x WHERE { A r ?x . MINUS { B s ?x . } }
        """)
        assert len(query.where.minus) == 1

    def test_union(self):
        query = parse_sparql("""
            SELECT ?x WHERE { { A r ?x . } UNION { B s ?x . } }
        """)
        assert len(query.where.unions) == 1
        assert len(query.where.unions[0].groups) == 2

    def test_three_way_union(self):
        query = parse_sparql("""
            SELECT ?x WHERE { { A r ?x } UNION { B s ?x } UNION { C t ?x } }
        """)
        assert len(query.where.unions[0].groups) == 3

    def test_nested_filter_inside_union(self):
        query = parse_sparql("""
            SELECT ?x WHERE {
                { A r ?x . FILTER NOT EXISTS { B s ?x } } UNION { C t ?x }
            }
        """)
        assert len(query.where.unions[0].groups[0].not_exists) == 1


class TestErrors:
    def test_missing_select(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("WHERE { A r ?x }")

    def test_select_needs_variable(self):
        with pytest.raises(SparqlSyntaxError, match="variable"):
            parse_sparql("SELECT x WHERE { A r ?x }")

    def test_unclosed_brace(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?x WHERE { A r ?x")

    def test_lone_group_without_union(self):
        with pytest.raises(SparqlSyntaxError, match="UNION"):
            parse_sparql("SELECT ?x WHERE { { A r ?x } }")

    def test_trailing_tokens(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?x WHERE { A r ?x } extra")

    def test_keyword_as_predicate(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?x WHERE { A union ?x }")

    def test_garbage_characters(self):
        with pytest.raises(SparqlSyntaxError):
            parse_sparql("SELECT ?x WHERE { A r ?x ! }")
