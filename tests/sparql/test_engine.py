"""Tests for the end-to-end SPARQL engine (both executors)."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.core import HalkModel
from repro.kg import KnowledgeGraph
from repro.sparql import SparqlEngine


@pytest.fixture
def kg() -> KnowledgeGraph:
    return KnowledgeGraph(
        5, 3,
        [(0, 0, 1), (1, 1, 2), (1, 1, 3), (0, 2, 3), (2, 1, 4)],
        entity_names=["oscar", "spielberg", "jaws", "et", "duel"],
        relation_names=["winner", "directed", "produced"])


@pytest.fixture
def engine(kg) -> SparqlEngine:
    return SparqlEngine(kg)


class TestExactExecutor:
    def test_simple_chain(self, engine):
        result = engine.answer_exact(
            "SELECT ?f WHERE { oscar winner ?d . ?d directed ?f . }")
        assert set(result.entity_names) == {"jaws", "et"}

    def test_minus(self, engine):
        result = engine.answer_exact(
            "SELECT ?f WHERE { spielberg directed ?f . "
            "MINUS { oscar produced ?f } }")
        assert result.entity_names == ["jaws"]

    def test_union(self, engine):
        result = engine.answer_exact(
            "SELECT ?x WHERE { { oscar winner ?x } UNION "
            "{ oscar produced ?x } }")
        assert set(result.entity_names) == {"spielberg", "et"}

    def test_result_len(self, engine):
        result = engine.answer_exact("SELECT ?x WHERE { oscar winner ?x }")
        assert len(result) == 1

    def test_computation_graph_attached(self, engine):
        result = engine.answer_exact("SELECT ?x WHERE { oscar winner ?x }")
        assert result.computation_graph is not None


class TestEmbeddingExecutor:
    def test_requires_model(self, engine):
        with pytest.raises(RuntimeError, match="model"):
            engine.answer("SELECT ?x WHERE { oscar winner ?x }")

    def test_returns_top_k(self, kg):
        model = HalkModel(kg, ModelConfig(embedding_dim=6, hidden_dim=12))
        engine = SparqlEngine(kg, model=model)
        result = engine.answer("SELECT ?x WHERE { oscar winner ?x }", top_k=3)
        assert len(result.entity_ids) == 3
        assert all(name in kg.entity_names for name in result.entity_names)


class TestIndexAcceleratedExecutor:
    @pytest.fixture(scope="class")
    def big_kg(self) -> KnowledgeGraph:
        rng = np.random.default_rng(4)
        triples = {(int(rng.integers(120)), int(rng.integers(3)),
                    int(rng.integers(120))) for _ in range(600)}
        return KnowledgeGraph(120, 3, sorted(triples))

    @pytest.fixture(scope="class")
    def big_model(self, big_kg) -> HalkModel:
        return HalkModel(big_kg, ModelConfig(embedding_dim=8, hidden_dim=16,
                                             seed=0))

    @pytest.fixture(scope="class")
    def index(self, big_model):
        from repro.ann import LshIndex
        points = np.mod(big_model.entity_points.weight.data, 2 * np.pi)
        return LshIndex(points, num_tables=12, bits_per_table=4, seed=3)

    def test_index_recall(self, big_model, index):
        points = np.mod(big_model.entity_points.weight.data, 2 * np.pi)
        assert index.recall_at_k(points[:30], top_k=5) > 0.5

    def test_answer_with_index(self, big_kg, big_model, index):
        engine = SparqlEngine(big_kg, model=big_model)
        head, rel, _ = sorted(big_kg.triples)[0]
        sparql = (f"SELECT ?x WHERE {{ {big_kg.entity_names[head]} "
                  f"{big_kg.relation_names[rel]} ?x }}")
        result = engine.answer(sparql, top_k=5, index=index)
        assert len(result.entity_ids) == 5
        # the index path re-ranks with the true arc distance, so its
        # top-k should largely agree with the brute-force ranking
        brute = engine.answer(sparql, top_k=5)
        assert len(set(result.entity_ids) & set(brute.entity_ids)) >= 3

    def test_index_ignored_for_pointless_model(self, big_kg, big_model):
        """Models without point geometry silently fall back to brute force."""

        class PointlessModel(HalkModel):
            def query_points(self, embedding):
                return None

        model = PointlessModel(big_kg, ModelConfig(embedding_dim=8,
                                                   hidden_dim=16, seed=0))
        engine = SparqlEngine(big_kg, model=model)
        head, rel, _ = sorted(big_kg.triples)[0]
        sparql = (f"SELECT ?x WHERE {{ {big_kg.entity_names[head]} "
                  f"{big_kg.relation_names[rel]} ?x }}")
        result = engine.answer(sparql, top_k=4, index=object())
        assert len(result.entity_ids) == 4
