"""Tests for the end-to-end SPARQL engine (both executors)."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.core import HalkModel
from repro.kg import KnowledgeGraph
from repro.sparql import SparqlEngine


@pytest.fixture
def kg() -> KnowledgeGraph:
    return KnowledgeGraph(
        5, 3,
        [(0, 0, 1), (1, 1, 2), (1, 1, 3), (0, 2, 3), (2, 1, 4)],
        entity_names=["oscar", "spielberg", "jaws", "et", "duel"],
        relation_names=["winner", "directed", "produced"])


@pytest.fixture
def engine(kg) -> SparqlEngine:
    return SparqlEngine(kg)


class TestExactExecutor:
    def test_simple_chain(self, engine):
        result = engine.answer_exact(
            "SELECT ?f WHERE { oscar winner ?d . ?d directed ?f . }")
        assert set(result.entity_names) == {"jaws", "et"}

    def test_minus(self, engine):
        result = engine.answer_exact(
            "SELECT ?f WHERE { spielberg directed ?f . "
            "MINUS { oscar produced ?f } }")
        assert result.entity_names == ["jaws"]

    def test_union(self, engine):
        result = engine.answer_exact(
            "SELECT ?x WHERE { { oscar winner ?x } UNION "
            "{ oscar produced ?x } }")
        assert set(result.entity_names) == {"spielberg", "et"}

    def test_result_len(self, engine):
        result = engine.answer_exact("SELECT ?x WHERE { oscar winner ?x }")
        assert len(result) == 1

    def test_computation_graph_attached(self, engine):
        result = engine.answer_exact("SELECT ?x WHERE { oscar winner ?x }")
        assert result.computation_graph is not None


class TestEmbeddingExecutor:
    def test_requires_model(self, engine):
        with pytest.raises(RuntimeError, match="model"):
            engine.answer("SELECT ?x WHERE { oscar winner ?x }")

    def test_returns_top_k(self, kg):
        model = HalkModel(kg, ModelConfig(embedding_dim=6, hidden_dim=12))
        engine = SparqlEngine(kg, model=model)
        result = engine.answer("SELECT ?x WHERE { oscar winner ?x }", top_k=3)
        assert len(result.entity_ids) == 3
        assert all(name in kg.entity_names for name in result.entity_names)
