"""Tests for the configuration dataclasses."""

import pytest

from repro.config import ModelConfig, TrainConfig


class TestModelConfig:
    def test_defaults_valid(self):
        config = ModelConfig()
        assert config.embedding_dim > 0
        assert 0 < config.eta < 1

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            ModelConfig(embedding_dim=0)
        with pytest.raises(ValueError):
            ModelConfig(hidden_dim=-1)

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            ModelConfig(radius=0.0)

    def test_rejects_bad_eta(self):
        with pytest.raises(ValueError):
            ModelConfig(eta=0.0)
        with pytest.raises(ValueError):
            ModelConfig(eta=1.5)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            ModelConfig(gamma=-1.0)

    def test_with_replaces_fields(self):
        config = ModelConfig().with_(embedding_dim=64)
        assert config.embedding_dim == 64
        assert config.hidden_dim == ModelConfig().hidden_dim

    def test_with_validates(self):
        with pytest.raises(ValueError):
            ModelConfig().with_(eta=2.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ModelConfig().embedding_dim = 5


class TestTrainConfig:
    def test_defaults_valid(self):
        config = TrainConfig()
        assert config.epochs > 0

    def test_rejects_bad_epochs(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            TrainConfig(batch_size=0)

    def test_rejects_bad_negatives(self):
        with pytest.raises(ValueError):
            TrainConfig(num_negatives=0)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            TrainConfig(learning_rate=0.0)

    def test_embedding_lr_optional(self):
        assert TrainConfig().embedding_learning_rate is None
        assert TrainConfig(embedding_learning_rate=0.1).embedding_learning_rate == 0.1

    def test_with_replaces_fields(self):
        config = TrainConfig().with_(epochs=5)
        assert config.epochs == 5
