"""End-to-end integration tests across all subsystems.

These are the "does the whole paper pipeline hold together" tests:
dataset -> workload -> training -> evaluation -> answering, plus the
cross-subsystem paths (pruned matching, SPARQL with a trained executor,
LSH retrieval of a trained model's answers).
"""

import numpy as np
import pytest

from repro.ann import BruteForceIndex, LshIndex
from repro.baselines import (ConEModel, MLPMixModel, NewLookModel,
                             UnsupportedOperatorError)
from repro.config import ModelConfig, TrainConfig
from repro.core import (HalkModel, Trainer, answer_set_from_ranking, evaluate,
                        set_accuracy)
from repro.kg import fb237_mini
from repro.matching import GFinder, PrunedGFinder
from repro.queries import (QuerySampler, QueryWorkload, build_workloads,
                           execute, get_structure)
from repro.sparql import SparqlEngine


@pytest.fixture(scope="module")
def splits():
    return fb237_mini(scale=0.3)


@pytest.fixture(scope="module")
def bundle(splits):
    return build_workloads(splits, queries_per_structure=20,
                           eval_queries_per_structure=6, seed=0)


@pytest.fixture(scope="module")
def trained_halk(splits, bundle):
    model = HalkModel(splits.train, ModelConfig(embedding_dim=12,
                                                hidden_dim=24, seed=0))
    Trainer(model, bundle.train,
            TrainConfig(epochs=15, batch_size=64, num_negatives=8,
                        learning_rate=2e-3,
                        embedding_learning_rate=2e-2)).train()
    return model


def supported_workload(model, workload):
    out = QueryWorkload()
    for query in workload:
        try:
            model.embed_batch([query.query])
            out.add(query)
        except UnsupportedOperatorError:
            continue
    return out


class TestTrainingPipeline:
    def test_training_reduces_loss(self, splits, bundle):
        model = HalkModel(splits.train, ModelConfig(embedding_dim=8,
                                                    hidden_dim=16, seed=1))
        trainer = Trainer(model, bundle.train,
                          TrainConfig(epochs=8, batch_size=64,
                                      num_negatives=8, learning_rate=2e-3,
                                      embedding_learning_rate=2e-2))
        history = trainer.train()
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_evaluation_covers_all_structures(self, trained_halk, bundle):
        results = evaluate(trained_halk, bundle.test)
        assert set(results) == set(bundle.test.structures())
        for metrics in results.values():
            assert 0.0 <= metrics.mrr <= 1.0
            assert metrics.num_queries > 0

    def test_trained_model_beats_untrained(self, splits, bundle, trained_halk):
        # compare on training queries: at this tiny budget the reliable
        # signal is fitting the observed graph, not hard-answer recall
        fresh = HalkModel(splits.train, ModelConfig(embedding_dim=12,
                                                    hidden_dim=24, seed=9))
        probe = QueryWorkload({"1p": bundle.train["1p"][:40]})
        trained = evaluate(trained_halk, probe)["1p"].mrr
        untrained = evaluate(fresh, probe)["1p"].mrr
        assert trained > untrained

    @pytest.mark.parametrize("model_cls", [ConEModel, NewLookModel,
                                           MLPMixModel])
    def test_baseline_full_pipeline(self, splits, bundle, model_cls):
        model = model_cls(splits.train, ModelConfig(embedding_dim=8,
                                                    hidden_dim=16, seed=2))
        workload = supported_workload(model, bundle.train)
        assert workload.total() > 0
        history = Trainer(model, workload,
                          TrainConfig(epochs=5, batch_size=64,
                                      num_negatives=8,
                                      learning_rate=2e-3)).train()
        assert np.isfinite(history.final_loss)
        results = evaluate(model, supported_workload(model, bundle.test))
        assert results


class TestMatchingIntegration:
    def test_pruned_gfinder_end_to_end(self, splits, trained_halk):
        sampler = QuerySampler(splits.train, seed=5)
        grounded = sampler.sample(get_structure("2ipp"))
        gfinder = GFinder(splits.train)
        pruned = PrunedGFinder(trained_halk, gfinder, top_k=15)
        full_answers = gfinder.execute(grounded.query)
        pruned_answers = pruned.execute(grounded.query)
        # pruning can only remove candidates, never invent them
        assert pruned_answers <= full_answers

    def test_embedding_beats_matching_on_hard_answers(self, splits,
                                                      trained_halk):
        # on queries whose answers need unseen edges, GFinder (observed
        # graph) scores zero by construction; the embedding ranking at
        # least *can* recover them
        sampler = QuerySampler(splits.valid, splits.test, seed=6)
        grounded = sampler.sample(get_structure("1p"))
        matched = GFinder(splits.valid).execute(grounded.query)
        assert not (set(grounded.hard_answers) & matched)


class TestSparqlIntegration:
    def test_sparql_with_trained_executor(self, splits, trained_halk):
        kg = splits.train
        engine = SparqlEngine(kg, model=trained_halk)
        head, rel, _ = sorted(kg.triples)[0]
        sparql = (f"SELECT ?x WHERE {{ {kg.entity_names[head]} "
                  f"{kg.relation_names[rel]} ?x . }}")
        result = engine.answer(sparql, top_k=5)
        exact = engine.answer_exact(sparql)
        assert len(result) == 5
        assert set(exact.entity_ids) == set(kg.targets(head, rel))


class TestRetrievalIntegration:
    def test_lsh_retrieves_model_answers(self, splits, trained_halk):
        points = np.mod(trained_halk.entity_points.weight.data, 2 * np.pi)
        lsh = LshIndex(points, num_tables=10, bits_per_table=4, seed=0)
        brute = BruteForceIndex(points)
        query_point = points[3]
        exact = brute.query(query_point, top_k=5)
        approx = lsh.query(query_point, top_k=5)
        assert len(set(exact) & set(approx)) >= 3

    def test_answer_set_accuracy_roundtrip(self, splits, trained_halk):
        sampler = QuerySampler(splits.train, seed=8)
        grounded = sampler.sample(get_structure("2i"))
        distances = trained_halk.rank_all_entities([grounded.query])[0]
        predicted = answer_set_from_ranking(distances,
                                            len(grounded.easy_answers))
        accuracy = set_accuracy(predicted, grounded.easy_answers)
        assert 0.0 <= accuracy <= 1.0
