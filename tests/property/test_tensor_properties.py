"""Hypothesis property tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import F, Tensor

finite_floats = st.floats(min_value=-10.0, max_value=10.0,
                          allow_nan=False, allow_infinity=False, width=64)


def small_arrays(min_side=1, max_side=4):
    return arrays(np.float64,
                  array_shapes(min_dims=1, max_dims=2,
                               min_side=min_side, max_side=max_side),
                  elements=finite_floats)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_add_commutative(x):
    a = Tensor(x)
    b = Tensor(x[::-1].copy() if x.ndim == 1 else x.T.copy().reshape(x.shape))
    np.testing.assert_allclose((a + b).data, (b + a).data)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_exp_log_inverse(x):
    t = Tensor(x)
    np.testing.assert_allclose(F.log(F.exp(t)).data, x, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_sigmoid_bounded(x):
    out = F.sigmoid(Tensor(x)).data
    assert np.all(out >= 0.0) and np.all(out <= 1.0)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_softmax_is_distribution(x):
    out = F.softmax(Tensor(x), axis=-1).data
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-9)
    assert np.all(out >= 0.0)


@settings(max_examples=50, deadline=None)
@given(small_arrays())
def test_wrap_angle_idempotent(x):
    once = F.wrap_angle(Tensor(x)).data
    twice = F.wrap_angle(Tensor(once)).data
    np.testing.assert_allclose(once, twice, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_sum_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x))


@settings(max_examples=30, deadline=None)
@given(small_arrays(), finite_floats)
def test_scalar_mul_gradient(x, scalar):
    t = Tensor(x, requires_grad=True)
    (t * scalar).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(x, scalar))


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_chain_rule_linear_composition(x):
    # d/dx of sum(3 * (2x + 1)) = 6
    t = Tensor(x, requires_grad=True)
    ((t * 2.0 + 1.0) * 3.0).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(x, 6.0))


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_minimum_le_both(x):
    a = Tensor(x)
    b = Tensor(np.roll(x, 1))
    out = F.minimum(a, b).data
    assert np.all(out <= a.data + 1e-12)
    assert np.all(out <= b.data + 1e-12)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_logsigmoid_negative_softplus_identity(x):
    t = Tensor(x)
    np.testing.assert_allclose(F.log_sigmoid(t).data,
                               -F.softplus(-t).data, atol=1e-12)
