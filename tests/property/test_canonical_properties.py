"""Hypothesis property tests for serve-tier canonicalisation.

The plan compiler's template cache and the serving caches both assume
that :func:`canonicalize` is a *projection onto a normal form*: applying
it twice changes nothing, and the keys it induces are blind to how a
caller happened to order the operands of commutative connectives.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queries import (Difference, Entity, Intersection, Negation, Node,
                           Projection, Union, execute)
from repro.serve.canonical import (batch_key, cache_key, canonicalize,
                                   serialize)

from .test_executor_properties import graphs, queries

pytestmark = pytest.mark.plan


def permute(node: Node, rng: random.Random) -> Node:
    """Recursively shuffle commutative operands (Difference keeps head)."""
    if isinstance(node, Entity):
        return node
    if isinstance(node, Projection):
        return Projection(node.relation, permute(node.operand, rng))
    if isinstance(node, Negation):
        return Negation(permute(node.operand, rng))
    operands = [permute(op, rng) for op in node.operands]
    if isinstance(node, Difference):
        head, tail = operands[0], operands[1:]
        rng.shuffle(tail)
        return Difference((head, *tail))
    rng.shuffle(operands)
    return type(node)(tuple(operands))


@settings(max_examples=100, deadline=None)
@given(queries())
def test_canonicalize_is_idempotent(query):
    once = canonicalize(query)
    assert canonicalize(once) == once
    assert serialize(canonicalize(once)) == serialize(once)


@settings(max_examples=100, deadline=None)
@given(queries(), st.integers(0, 2**32 - 1))
def test_keys_stable_under_commutative_permutation(query, seed):
    shuffled = permute(query, random.Random(seed))
    assert cache_key(shuffled) == cache_key(query)
    assert batch_key(shuffled) == batch_key(query)


@settings(max_examples=60, deadline=None)
@given(graphs(), queries(), st.integers(0, 2**32 - 1))
def test_permutation_preserves_answers(kg, query, seed):
    # the normal form is only sound if the shuffles it equates really
    # are the same query
    shuffled = permute(query, random.Random(seed))
    assert execute(shuffled, kg) == execute(query, kg)


@settings(max_examples=100, deadline=None)
@given(graphs(), queries())
def test_canonicalize_preserves_answers(kg, query):
    assert execute(canonicalize(query), kg) == execute(query, kg)
