"""Hypothesis property tests for arc geometry and operator invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.config import ModelConfig
from repro.core import (Arc, DifferenceOperator, IntersectionOperator,
                        NegationOperator, entity_to_arc_distance)
from repro.nn import Tensor

TWO_PI = 2 * np.pi
DIM = 4
CONFIG = ModelConfig(embedding_dim=DIM, hidden_dim=8, seed=0)

angles = st.floats(min_value=0.0, max_value=TWO_PI - 1e-9,
                   allow_nan=False, width=64)
lengths = st.floats(min_value=0.0, max_value=TWO_PI, allow_nan=False, width=64)


def angle_arrays():
    return arrays(np.float64, (2, DIM), elements=angles)


def length_arrays():
    return arrays(np.float64, (2, DIM), elements=lengths)


@settings(max_examples=40, deadline=None)
@given(angle_arrays(), length_arrays())
def test_start_end_reconstruct_center(center, length):
    arc = Arc(Tensor(center), Tensor(length))
    midpoint = (arc.start.data + arc.end.data) / 2.0
    np.testing.assert_allclose(midpoint, center, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(angle_arrays(), length_arrays(), angle_arrays())
def test_distance_nonnegative(center, length, points):
    arc = Arc(Tensor(center), Tensor(length))
    d = entity_to_arc_distance(Tensor(points[:, None, :]), arc, eta=0.02)
    assert np.all(d.data >= -1e-12)


@settings(max_examples=40, deadline=None)
@given(angle_arrays(), length_arrays(), angle_arrays())
def test_distance_invariant_to_full_rotation(center, length, points):
    arc = Arc(Tensor(center), Tensor(length))
    shifted = Arc(Tensor(center + TWO_PI), Tensor(length))
    d1 = entity_to_arc_distance(Tensor(points[:, None, :]), arc, eta=0.02)
    d2 = entity_to_arc_distance(Tensor(points[:, None, :]), shifted, eta=0.02)
    np.testing.assert_allclose(d1.data, d2.data, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(angle_arrays(), length_arrays())
def test_negation_linear_part_tiles_circle(center, length):
    op = NegationOperator(CONFIG, np.random.default_rng(0))
    arc = Arc(Tensor(center), Tensor(length))
    negated = op.linear_negation(arc)
    np.testing.assert_allclose(arc.length.data + negated.length.data, TWO_PI)


@settings(max_examples=25, deadline=None)
@given(angle_arrays(), length_arrays(), angle_arrays(), length_arrays())
def test_intersection_cardinality_bound(c1, l1, c2, l2):
    op = IntersectionOperator(CONFIG, np.random.default_rng(0))
    a = Arc(Tensor(c1), Tensor(l1))
    b = Arc(Tensor(c2), Tensor(l2))
    out = op([a, b])
    bound = np.minimum(l1, l2)
    assert np.all(out.length.data <= bound + 1e-9)


@settings(max_examples=25, deadline=None)
@given(angle_arrays(), length_arrays(), angle_arrays(), length_arrays())
def test_difference_subset_of_head(c1, l1, c2, l2):
    op = DifferenceOperator(CONFIG, np.random.default_rng(0))
    head = Arc(Tensor(c1), Tensor(l1))
    other = Arc(Tensor(c2), Tensor(l2))
    out = op([head, other])
    assert np.all(out.length.data <= head.length.data + 1e-9)


@settings(max_examples=25, deadline=None)
@given(angle_arrays(), length_arrays(), angle_arrays(), length_arrays(),
       angle_arrays(), length_arrays())
def test_difference_permutation_invariant_over_rest(c1, l1, c2, l2, c3, l3):
    op = DifferenceOperator(CONFIG, np.random.default_rng(0))
    head = Arc(Tensor(c1), Tensor(l1))
    b = Arc(Tensor(c2), Tensor(l2))
    c = Arc(Tensor(c3), Tensor(l3))
    out1 = op([head, b, c])
    out2 = op([head, c, b])
    np.testing.assert_allclose(out1.center.data, out2.center.data, atol=1e-9)
    np.testing.assert_allclose(out1.length.data, out2.length.data, atol=1e-9)
