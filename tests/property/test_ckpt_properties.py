"""Hypothesis property tests for checkpoint save -> load round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.ckpt import load_checkpoint, save_checkpoint

pytestmark = pytest.mark.ckpt

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)

_shapes = array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4)
array_values = st.one_of(
    arrays(np.float64, _shapes, elements=finite_floats),
    arrays(np.float32, _shapes,
           elements=st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False, width=32)),
    arrays(np.int64, _shapes,
           elements=st.integers(min_value=-2 ** 40, max_value=2 ** 40)),
)

#: names that exercise separators and non-identifier characters; the
#: exact key "__ndarray__" is reserved by the format (save_checkpoint
#: rejects it loudly by contract) so the generator must avoid it
keys = st.text(
    alphabet=st.characters(whitelist_categories=("L", "Nd"),
                           whitelist_characters="._- "),
    min_size=1, max_size=12).filter(lambda key: key != "__ndarray__")

json_leaves = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-2 ** 80,
                                          max_value=2 ** 80),
    finite_floats, st.text(max_size=12))

state_trees = st.recursive(
    st.dictionaries(keys, st.one_of(array_values, json_leaves),
                    min_size=0, max_size=4),
    lambda children: st.dictionaries(
        keys, st.one_of(array_values, json_leaves, children,
                        st.lists(st.one_of(array_values, json_leaves),
                                 max_size=3)),
        min_size=0, max_size=4),
    max_leaves=12)


def assert_equal_tree(left, right, path="root"):
    assert type(left) is type(right) or (
        isinstance(left, (list, tuple)) and isinstance(right, (list, tuple))
    ), f"type mismatch at {path}: {type(left)} vs {type(right)}"
    if isinstance(left, np.ndarray):
        assert left.dtype == right.dtype, f"dtype mismatch at {path}"
        np.testing.assert_array_equal(left, right, err_msg=path)
    elif isinstance(left, dict):
        assert set(left) == set(right), f"key mismatch at {path}"
        for key in left:
            assert_equal_tree(left[key], right[key], f"{path}/{key}")
    elif isinstance(left, (list, tuple)):
        assert len(left) == len(right), f"length mismatch at {path}"
        for index, (a, b) in enumerate(zip(left, right)):
            assert_equal_tree(a, b, f"{path}/{index}")
    else:
        assert left == right, f"leaf mismatch at {path}: {left!r} != {right!r}"


@settings(max_examples=40, deadline=None)
@given(state=state_trees)
def test_arbitrary_state_roundtrips(state, tmp_path_factory):
    path = tmp_path_factory.mktemp("ckpt") / "state.npz"
    save_checkpoint(path, state, meta={"kind": "property"})
    loaded = load_checkpoint(path)
    assert loaded.manifest.meta == {"kind": "property"}
    assert_equal_tree(state, loaded.state)


@settings(max_examples=25, deadline=None)
@given(values=st.lists(finite_floats, min_size=0, max_size=30),
       step=st.integers(min_value=0, max_value=2 ** 40))
def test_losses_and_counters_roundtrip_exactly(values, step,
                                               tmp_path_factory):
    """Loss histories and step counters must survive bit-for-bit — the
    resume-determinism guarantee depends on it."""
    path = tmp_path_factory.mktemp("ckpt") / "state.npz"
    state = {"history": {"losses": values}, "step": step}
    save_checkpoint(path, state)
    loaded = load_checkpoint(path).state
    assert loaded["step"] == step
    assert loaded["history"]["losses"] == values
    for original, restored in zip(values, loaded["history"]["losses"]):
        assert np.float64(original).tobytes() \
            == np.float64(restored).tobytes()


@settings(max_examples=20, deadline=None)
@given(data=array_values, rng_seed=st.integers(min_value=0,
                                               max_value=2 ** 32 - 1))
def test_rng_state_roundtrips(data, rng_seed, tmp_path_factory):
    """A checkpointed RNG continues the exact same stream after reload."""
    path = tmp_path_factory.mktemp("ckpt") / "state.npz"
    rng = np.random.default_rng(rng_seed)
    rng.normal(size=7)  # advance off the seed state
    save_checkpoint(path, {"rng": rng.bit_generator.state,
                           "data": data})
    loaded = load_checkpoint(path).state
    fresh = np.random.default_rng(0)
    fresh.bit_generator.state = loaded["rng"]
    np.testing.assert_array_equal(fresh.normal(size=9), rng.normal(size=9))
    np.testing.assert_array_equal(loaded["data"], data)
