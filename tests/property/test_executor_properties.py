"""Hypothesis property tests for query semantics (set-algebra laws)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg import KnowledgeGraph
from repro.queries import (Difference, Entity, Intersection, Negation, Node,
                           Projection, Union, execute, to_dnf)

N_ENTITIES = 12
N_RELATIONS = 3


@st.composite
def graphs(draw):
    n_triples = draw(st.integers(min_value=5, max_value=40))
    triples = [
        (draw(st.integers(0, N_ENTITIES - 1)),
         draw(st.integers(0, N_RELATIONS - 1)),
         draw(st.integers(0, N_ENTITIES - 1)))
        for _ in range(n_triples)
    ]
    return KnowledgeGraph(N_ENTITIES, N_RELATIONS, triples)


@st.composite
def queries(draw, depth=2) -> Node:
    if depth == 0:
        return Entity(draw(st.integers(0, N_ENTITIES - 1)))
    kind = draw(st.sampled_from(
        ["entity", "projection", "intersection", "union", "difference",
         "negation"]))
    if kind == "entity":
        return Entity(draw(st.integers(0, N_ENTITIES - 1)))
    if kind == "projection":
        return Projection(draw(st.integers(0, N_RELATIONS - 1)),
                          draw(queries(depth=depth - 1)))
    if kind == "negation":
        return Negation(draw(queries(depth=depth - 1)))
    operands = tuple(draw(queries(depth=depth - 1))
                     for _ in range(draw(st.integers(2, 3))))
    if kind == "intersection":
        return Intersection(operands)
    if kind == "union":
        return Union(operands)
    return Difference(operands)


@settings(max_examples=60, deadline=None)
@given(graphs(), queries())
def test_dnf_preserves_semantics(kg, query):
    direct = execute(query, kg)
    via_dnf = set()
    for branch in to_dnf(query):
        via_dnf |= execute(branch, kg)
    assert direct == via_dnf


@settings(max_examples=40, deadline=None)
@given(graphs(), queries(depth=1), queries(depth=1))
def test_difference_equals_intersection_with_negation(kg, a, b):
    # B − C == B ∩ ¬C (the identity underlying Fig. 2 of the paper)
    diff = execute(Difference((a, b)), kg)
    neg = execute(Intersection((a, Negation(b))), kg)
    assert diff == neg


@settings(max_examples=40, deadline=None)
@given(graphs(), queries(depth=1))
def test_double_negation_is_identity(kg, q):
    assert execute(Negation(Negation(q)), kg) == execute(q, kg)


@settings(max_examples=40, deadline=None)
@given(graphs(), queries(depth=1), queries(depth=1))
def test_de_morgan(kg, a, b):
    lhs = execute(Negation(Union((a, b))), kg)
    rhs = execute(Intersection((Negation(a), Negation(b))), kg)
    assert lhs == rhs


@settings(max_examples=40, deadline=None)
@given(graphs(), queries(depth=1), queries(depth=1))
def test_intersection_commutative(kg, a, b):
    assert execute(Intersection((a, b)), kg) == execute(Intersection((b, a)), kg)


@settings(max_examples=40, deadline=None)
@given(graphs(), queries(depth=1), queries(depth=1))
def test_union_upper_bounds_operands(kg, a, b):
    union = execute(Union((a, b)), kg)
    assert execute(a, kg) <= union
    assert execute(b, kg) <= union


@settings(max_examples=40, deadline=None)
@given(graphs(), st.integers(0, N_RELATIONS - 1), queries(depth=1),
       queries(depth=1))
def test_projection_distributes_over_union(kg, rel, a, b):
    lhs = execute(Projection(rel, Union((a, b))), kg)
    rhs = execute(Union((Projection(rel, a), Projection(rel, b))), kg)
    assert lhs == rhs


@settings(max_examples=40, deadline=None)
@given(graphs(), queries())
def test_gfinder_agrees_with_executor(kg, query):
    from repro.matching import GFinder
    assert GFinder(kg).execute(query) == execute(query, kg)
