"""The blocked arc kernel must be *bitwise* equal to the model pass.

This parity is the foundation of the whole subsystem: sharded answers
are provably identical to single-process answers only because a shard
worker computes the very same float ops, in the same order, as
``distance_to_all`` does on those columns.
"""

import numpy as np
import pytest

from repro.core.topk import topk_rows
from repro.dist import ArcShardScorer, partition_rows

pytestmark = pytest.mark.dist


@pytest.fixture(scope="module")
def embedding(model, queries):
    return model.embed_batch(queries)


def test_scorer_matches_distance_to_all_bitwise(model, embedding):
    expect = model.distance_to_all(embedding).data
    points, scorer = model.sharding_spec()
    assert isinstance(scorer, ArcShardScorer)
    got = scorer.score(points, model.ranking_payload(embedding))
    assert np.array_equal(got, expect)


@pytest.mark.parametrize("block", [1, 3, 64, 10_000])
def test_block_size_does_not_change_bits(model, embedding, block):
    points, scorer = model.sharding_spec()
    scorer.block = block
    got = scorer.score(points, model.ranking_payload(embedding))
    assert np.array_equal(got, model.distance_to_all(embedding).data)


def test_row_blocks_match_full_pass_columns(model, embedding):
    """Scoring a shard's rows == the same columns of the full pass."""
    expect = model.distance_to_all(embedding).data
    points, scorer = model.sharding_spec()
    for shard in partition_rows(points.shape[0], 3):
        block = scorer.score(points[shard.start:shard.stop],
                             model.ranking_payload(embedding))
        assert np.array_equal(block, expect[:, shard.start:shard.stop])


def test_scorer_is_picklable(model):
    import pickle
    _, scorer = model.sharding_spec()
    clone = pickle.loads(pickle.dumps(scorer))
    assert clone.eta == scorer.eta and clone.radius == scorer.radius


def test_topk_on_scorer_output_matches_model(model, embedding):
    expect = topk_rows(model.distance_to_all(embedding).data, 7)
    points, scorer = model.sharding_spec()
    got = topk_rows(scorer.score(points, model.ranking_payload(embedding)),
                    7)
    assert np.array_equal(got, expect)
