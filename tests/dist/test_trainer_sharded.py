"""Data-parallel training must match the single-process trainer.

The sharded gradient is the sample-count weighted sum of per-worker
sub-batch gradients — mathematically equal to the full-batch gradient,
different only in float summation order, so parameters are compared to a
tight tolerance rather than bitwise.
"""

import numpy as np
import pytest

from repro.config import ModelConfig, TrainConfig
from repro.core import HalkModel, Trainer
from repro.dist import ShardedTrainer
from repro.queries import Entity, GroundedQuery, Projection, QueryWorkload

from .conftest import requires_shm

pytestmark = [pytest.mark.dist, requires_shm]


@pytest.fixture(scope="module")
def workload(kg) -> QueryWorkload:
    workload = QueryWorkload()
    for head, rel, _ in list(kg)[:16]:
        workload.add(GroundedQuery("1p", Projection(rel, Entity(head)),
                                   frozenset(kg.targets(head, rel)),
                                   frozenset()))
    return workload


def _model(kg):
    return HalkModel(kg, ModelConfig(embedding_dim=6, hidden_dim=12,
                                     seed=3))


def _config(epochs=1):
    return TrainConfig(epochs=epochs, batch_size=8, num_negatives=4,
                       seed=5, log_every=0)


def test_two_worker_training_matches_single_process(kg, workload):
    single = _model(kg)
    history = Trainer(single, workload, _config()).train()
    sharded_model = _model(kg)
    trainer = ShardedTrainer(sharded_model, workload, _config(),
                             num_workers=2)
    sharded_history = trainer.train()

    np.testing.assert_allclose(sharded_history.epoch_losses,
                               history.epoch_losses, rtol=1e-12)
    for (name, p1), (_, p2) in zip(single.named_parameters(),
                                   sharded_model.named_parameters()):
        np.testing.assert_allclose(p2.data, p1.data, atol=1e-10,
                                   err_msg=name)


def test_train_releases_workers_and_segments(kg, workload):
    trainer = ShardedTrainer(_model(kg), workload, _config(),
                             num_workers=2)
    trainer.train()
    # train() closes the pool on exit; closing again must be a no-op
    assert trainer._pool is None
    trainer.close()


def test_rejects_silly_worker_counts(kg, workload):
    with pytest.raises(ValueError):
        ShardedTrainer(_model(kg), workload, _config(), num_workers=0)
