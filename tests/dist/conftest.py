"""Shared fixtures for the sharded-execution tests.

Worker pools are expensive on slow machines (spawn = fresh interpreter +
numpy import per worker), so the model/ranker fixtures are module-scoped
and the tests that need live workers are kept few and small.
"""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.core import HalkModel
from repro.dist import dist_available
from repro.kg import KnowledgeGraph
from repro.queries import Entity, Projection

requires_shm = pytest.mark.skipif(
    not dist_available(),
    reason="multiprocessing.shared_memory unavailable on this platform")


@pytest.fixture(scope="module")
def kg() -> KnowledgeGraph:
    rng = np.random.default_rng(11)
    n = 101
    triples = [(int(rng.integers(n)), int(rng.integers(3)),
                int(rng.integers(n))) for _ in range(250)]
    return KnowledgeGraph(n, 3, triples)


@pytest.fixture(scope="module")
def model(kg) -> HalkModel:
    return HalkModel(kg, ModelConfig(embedding_dim=6, hidden_dim=12,
                                     seed=3))


@pytest.fixture(scope="module")
def queries(kg):
    return [Projection(rel, Entity(head))
            for head, rel, _ in list(kg)[:6]]
