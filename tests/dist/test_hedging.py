"""Hedged shard dispatch: delay policy, result parity, exactly-once.

The policy unit tests are pure and process-free.  The live tests run a
2-shard pool with ``fixed_delay=0`` (hedge every request immediately) —
the harshest race — and assert that first-reply-wins never changes a
result and that each shard's work is counted exactly once even when
workers are killed mid-hedge.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topk import topk_rows
from repro.dist import ShardedRanker, merge_topk
from repro.dist.pool import HedgeConfig, HedgePolicy

from .conftest import requires_shm

pytestmark = [pytest.mark.dist, pytest.mark.gateway]


class TestHedgePolicy:
    def test_fixed_delay_bypasses_warmup(self):
        policy = HedgePolicy(None, HedgeConfig(fixed_delay=0.125))
        assert policy.delay() == 0.125  # zero samples observed

    def test_no_delay_until_min_samples(self):
        policy = HedgePolicy(None, HedgeConfig(min_samples=4))
        for _ in range(3):
            policy.observe(0.1)
            assert policy.delay() is None
        policy.observe(0.1)
        assert policy.delay() is not None

    def test_delay_is_p95_times_factor(self):
        config = HedgeConfig(min_samples=4, delay_factor=2.0,
                             min_delay=0.0, max_delay=10.0)
        policy = HedgePolicy(None, config)
        for value in (0.1, 0.1, 0.1, 0.1):
            policy.observe(value)
        assert policy.delay() == pytest.approx(0.2)

    def test_delay_clamps_to_bounds(self):
        config = HedgeConfig(min_samples=2, min_delay=0.01, max_delay=0.5)
        fast = HedgePolicy(None, config)
        for _ in range(4):
            fast.observe(1e-6)
        assert fast.delay() == 0.01
        slow = HedgePolicy(None, config)
        for _ in range(4):
            slow.observe(30.0)
        assert slow.delay() == 0.5

    def test_window_slides_old_samples_out(self):
        config = HedgeConfig(min_samples=2, window=2, delay_factor=1.0,
                             min_delay=0.0, max_delay=100.0)
        policy = HedgePolicy(None, config)
        policy.observe(50.0)  # will slide out of the window
        policy.observe(0.2)
        policy.observe(0.2)
        assert policy.delay() == pytest.approx(0.2)


@pytest.fixture(scope="module")
def hedged(model):
    ranker = ShardedRanker.for_model(model, 2,
                                     hedge=HedgeConfig(fixed_delay=0.0))
    assert ranker is not None
    yield ranker
    ranker.close()


@pytest.fixture(scope="module")
def embedding(model, queries):
    return model.embed_batch(queries)


@requires_shm
class TestHedgedParity:
    @settings(max_examples=20, deadline=None)
    @given(k=st.integers(min_value=1, max_value=60))
    def test_first_reply_wins_never_changes_topk(self, model, hedged,
                                                 embedding, k):
        """Property: hedging is invisible in results for any k.

        With ``fixed_delay=0`` every request races a parent-side mirror
        against the worker, so 20 examples are 40 races — whoever wins,
        ids AND values must be bitwise identical to the single-process
        reference.
        """
        distances = model.distance_to_all(embedding).data
        expect_ids = topk_rows(distances, k)
        ids, vals = hedged.topk(embedding, k)
        assert np.array_equal(ids, expect_ids)
        assert np.array_equal(
            vals, np.take_along_axis(distances, expect_ids, axis=-1))

    def test_hedges_were_actually_launched(self, hedged):
        counters = hedged.pool.metrics.snapshot().counters
        assert counters.get("hedges{outcome=launched}", 0) > 0


@requires_shm
class TestExactlyOnceTelemetry:
    def test_kill_during_hedge_counts_each_shard_once(self, model,
                                                      queries):
        """``rank_requests{shard=k} + hedge_wins{shard=k} == N`` even
        when workers die mid-hedge.

        A lost worker reply (stale seq) is dropped together with its
        piggybacked telemetry, and a crash-after-compute dies before its
        reply ships — either way a superseded computation must never be
        merged, so the two counters partition the N requests exactly.
        """
        ranker = ShardedRanker.for_model(
            model, 2, hedge=HedgeConfig(fixed_delay=0.0))
        assert ranker is not None
        try:
            metrics = ranker.pool.metrics

            def shard_counts():
                counters = metrics.snapshot().counters
                return {(name, shard): counters.get(
                            f"{name}{{shard={shard}}}", 0)
                        for name in ("rank_requests", "hedge_wins")
                        for shard in range(2)}

            embedding = model.embed_batch(queries)
            expect_ids = topk_rows(
                model.distance_to_all(embedding).data, 5)
            before = shard_counts()
            for _ in range(3):  # plain hedged requests
                ids, _ = ranker.topk(embedding, 5)
                assert np.array_equal(ids, expect_ids)
            payload = model.ranking_payload(embedding)
            request = {"mode": "topk", "k": 5, "payload": payload}
            for victim, mode in ((0, "before"), (1, "after")):
                crashing = [dict(request) for _ in range(2)]
                crashing[victim]["crash"] = mode
                resend = [dict(request) for _ in range(2)]
                seq = ranker.pool.dispatch(crashing)
                replies, _ = ranker.pool.gather(seq, resend)
                ids, _ = merge_topk([r["ids"] for r in replies],
                                    [r["vals"] for r in replies], 5)
                assert np.array_equal(ids, expect_ids)
            after = shard_counts()
            for shard in range(2):
                handled = (after[("rank_requests", shard)]
                           - before[("rank_requests", shard)])
                wins = (after[("hedge_wins", shard)]
                        - before[("hedge_wins", shard)])
                assert handled + wins == 5, \
                    f"shard {shard}: {handled} worker + {wins} hedge"
        finally:
            ranker.close()
