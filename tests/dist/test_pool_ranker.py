"""Live worker-pool tests: parity, crash healing, clean teardown.

Everything that spawns processes lives here, against ONE module-scoped
ranker (spawn start-up is the expensive part), with the teardown/no-leak
assertions running last against that same pool.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.topk import topk_rows
from repro.dist import ShardedRanker, merge_topk

from .conftest import requires_shm

pytestmark = [pytest.mark.dist, requires_shm]


@pytest.fixture(scope="module")
def ranker(model):
    ranker = ShardedRanker.for_model(model, 3)
    assert ranker is not None
    yield ranker
    ranker.close()


@pytest.fixture(scope="module")
def embedding(model, queries):
    return model.embed_batch(queries)


def _expected(model, embedding, k):
    distances = model.distance_to_all(embedding).data
    ids = topk_rows(distances, k)
    return distances, ids, np.take_along_axis(distances, ids, axis=-1)


class TestParity:
    def test_topk_bitwise_equal(self, model, ranker, embedding):
        _, expect_ids, expect_vals = _expected(model, embedding, 10)
        ids, vals = ranker.topk(embedding, 10)
        assert np.array_equal(ids, expect_ids)
        assert np.array_equal(vals, expect_vals)

    def test_distances_bitwise_equal(self, model, ranker, embedding):
        expect, _, _ = _expected(model, embedding, 1)
        assert np.array_equal(ranker.distances(embedding), expect)

    def test_k_wider_than_a_shard(self, model, ranker, embedding):
        k = 60  # 101 entities / 3 shards = 33-34 rows per shard
        _, expect_ids, expect_vals = _expected(model, embedding, k)
        ids, vals = ranker.topk(embedding, k)
        assert np.array_equal(ids, expect_ids)
        assert np.array_equal(vals, expect_vals)

    def test_refresh_publishes_new_weights(self, model, ranker, queries):
        original = model.entity_points.weight.data.copy()
        try:
            model.entity_points.weight.data += 0.05
            ranker.refresh()
            embedding = model.embed_batch(queries)
            _, expect_ids, _ = _expected(model, embedding, 10)
            ids, _ = ranker.topk(embedding, 10)
            assert np.array_equal(ids, expect_ids)
        finally:
            model.entity_points.weight.data[...] = original
            ranker.refresh()


class TestCrashHealing:
    def test_injected_crash_respawns_and_answers(self, model, ranker,
                                                 embedding):
        """A worker dying mid-request is respawned and the answer is
        still exactly right."""
        _, expect_ids, _ = _expected(model, embedding, 10)
        payload = model.ranking_payload(embedding)
        request = {"mode": "topk", "k": 10, "payload": payload}
        crashing = [dict(request) for _ in range(ranker.num_shards)]
        crashing[1]["crash"] = "before"
        resend = [dict(request) for _ in range(ranker.num_shards)]
        before = ranker.respawns
        seq = ranker.pool.dispatch(crashing)
        replies, _ = ranker.pool.gather(seq, resend)
        ids, _ = merge_topk([r["ids"] for r in replies],
                            [r["vals"] for r in replies], 10)
        assert np.array_equal(ids, expect_ids)
        assert ranker.respawns == before + 1
        assert all(ranker.pool.alive())

    def test_crash_after_compute_discards_stale_reply(self, model, ranker,
                                                      embedding):
        """Dying *after* computing must not leave a stale reply that a
        later request could consume."""
        _, expect_ids, _ = _expected(model, embedding, 5)
        payload = model.ranking_payload(embedding)
        request = {"mode": "topk", "k": 5, "payload": payload}
        crashing = [dict(request) for _ in range(ranker.num_shards)]
        crashing[0]["crash"] = "after"
        resend = [dict(request) for _ in range(ranker.num_shards)]
        seq = ranker.pool.dispatch(crashing)
        replies, _ = ranker.pool.gather(seq, resend)
        ids, _ = merge_topk([r["ids"] for r in replies],
                            [r["vals"] for r in replies], 5)
        assert np.array_equal(ids, expect_ids)
        # the pool must still answer correctly on the *next* request too
        ids2, _ = ranker.topk(embedding, 5)
        assert np.array_equal(ids2, expect_ids)

    def test_sigkill_mid_flight(self, model, ranker, embedding):
        """A real SIGKILL (not injection) heals the same way."""
        _, expect_ids, _ = _expected(model, embedding, 10)
        victim = ranker.pool.pids()[2]
        os.kill(victim, signal.SIGKILL)
        ids, _ = ranker.topk(embedding, 10)
        assert np.array_equal(ids, expect_ids)
        assert all(ranker.pool.alive())


class TestTeardown:
    def test_close_leaves_no_workers_or_segments(self, model):
        ranker = ShardedRanker.for_model(model, 2)
        assert ranker is not None
        shm_name = ranker.plan.table.spec.name
        pids = ranker.pool.pids()
        ranker.close()
        ranker.close()  # idempotent
        for pid in pids:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    break
                time.sleep(0.05)
            else:
                pytest.fail(f"worker {pid} still alive after close()")
        from multiprocessing import shared_memory
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=shm_name)

    def test_unsupported_model_returns_none(self):
        class NoShards:
            def sharding_spec(self):
                return None

        assert ShardedRanker.for_model(NoShards(), 4) is None
