"""Lazy per-shard slabs, chunked fills, and the oversubscription clamp.

The lazy layout must be indistinguishable from the whole-table layout
through every consumer-visible surface: ``shard_spec`` attach + slice,
``rows()``, write-through ``update``, and the live ``ShardedRanker``
(bitwise-equal rankings).  The clamp must turn the former
``partition_rows`` crash into a working (smaller) plan whose effective
shard count surfaces in the serving ``shards`` gauge.
"""

import warnings

import numpy as np
import pytest

from repro.core.topk import topk_rows
from repro.dist import EntityShardPlan, SharedArray, ShardedRanker

from .conftest import requires_shm

pytestmark = [pytest.mark.dist, pytest.mark.scaling]


# ----------------------------------------------------------------------
# SharedArray: create-empty + chunked fill
# ----------------------------------------------------------------------

@requires_shm
def test_create_empty_then_chunked_fill():
    source = np.random.default_rng(0).normal(size=(513, 6))
    with SharedArray.create_empty(source.shape, source.dtype) as shared:
        assert not shared.ndarray.any()  # fresh segments are zeroed
        shared.fill(source, chunk_rows=64)
        assert np.array_equal(shared.ndarray, source)


@requires_shm
def test_create_copies_noncontiguous_sources_once():
    base = np.arange(400, dtype=np.float64).reshape(100, 4)
    strided = base[::2]  # non-contiguous view
    with SharedArray.create(strided) as shared:
        assert np.array_equal(shared.ndarray, strided)


@requires_shm
def test_fill_rejects_row_mismatch():
    with SharedArray.create_empty((10, 3), np.float64) as shared:
        with pytest.raises(ValueError):
            shared.fill(np.zeros((9, 3)))


@requires_shm
def test_fill_accepts_memmap_sources(tmp_path):
    """xl path: the source never needs to be a resident ndarray."""
    path = tmp_path / "table.npy"
    source = np.random.default_rng(1).normal(size=(257, 5))
    np.save(path, source)
    mapped = np.load(path, mmap_mode="r")
    with SharedArray.create_empty(source.shape, source.dtype) as shared:
        shared.fill(mapped, chunk_rows=50)
        assert np.array_equal(shared.ndarray, source)
    with EntityShardPlan(np.load(path, mmap_mode="r"), 3,
                         lazy=True) as plan:
        for rng in plan.ranges:
            assert np.array_equal(plan.rows(rng),
                                  source[rng.start:rng.stop])


# ----------------------------------------------------------------------
# EntityShardPlan: lazy slabs == whole-table plan
# ----------------------------------------------------------------------

@requires_shm
@pytest.mark.parametrize("num_shards", [2, 3, 5])
def test_lazy_plan_matches_table_plan(num_shards):
    points = np.random.default_rng(2).uniform(size=(101, 4))
    with EntityShardPlan(points, num_shards) as table, \
            EntityShardPlan(points, num_shards, lazy=True) as lazy:
        assert table.ranges == lazy.ranges
        for rng in table.ranges:
            assert np.array_equal(table.rows(rng), lazy.rows(rng))
            spec, shard = lazy.shard_spec(rng.index)
            assert spec.row_offset == shard.start
            assert spec.shape == (len(shard), 4)
            attached = spec.attach()
            try:
                view = attached.ndarray[shard.start - spec.row_offset:
                                        shard.stop - spec.row_offset]
                assert np.array_equal(view,
                                      points[shard.start:shard.stop])
            finally:
                attached.close()


@requires_shm
def test_lazy_plan_write_through_update():
    points = np.random.default_rng(3).uniform(size=(64, 3))
    with EntityShardPlan(points, 4, lazy=True, chunk_rows=7) as plan:
        attached = [plan.shard_spec(i)[0].attach() for i in range(4)]
        try:
            plan.update(points + 1.0)
            for shard, view in zip(plan.ranges, attached):
                assert np.array_equal(
                    view.ndarray, points[shard.start:shard.stop] + 1.0)
        finally:
            for view in attached:
                view.close()
        with pytest.raises(ValueError):
            plan.update(points[:10])


@requires_shm
def test_plan_clamps_shards_to_entity_count():
    points = np.random.default_rng(4).uniform(size=(3, 2))
    with pytest.warns(RuntimeWarning, match="clamping"):
        plan = EntityShardPlan(points, 8)
    with plan:
        assert plan.num_shards == 3
        assert [len(r) for r in plan.ranges] == [1, 1, 1]


# ----------------------------------------------------------------------
# ShardedRanker over both layouts + the clamped tiny-graph path
# ----------------------------------------------------------------------

def _reference(model, queries, k):
    embedding = model.embed_batch(queries)
    distances = model.distance_to_all(embedding).data
    ids = topk_rows(distances, k)
    return embedding, ids, np.take_along_axis(distances, ids, axis=-1)


@requires_shm
def test_lazy_ranker_bitwise_equal(model, queries):
    embedding, ids, vals = _reference(model, queries, 10)
    with ShardedRanker.for_model(model, 3, lazy_slabs=True) as ranker:
        assert ranker.plan.lazy
        got_ids, got_vals = ranker.topk(embedding, 10)
        assert np.array_equal(got_ids, ids)
        assert np.array_equal(got_vals, vals)
        ranker.refresh()  # lazy write-through refresh keeps parity
        got_ids, got_vals = ranker.topk(embedding, 10)
        assert np.array_equal(got_ids, ids)


@requires_shm
def test_auto_lazy_threshold(model):
    """Small models stay on the whole-table layout by default."""
    with ShardedRanker.for_model(model, 2) as ranker:
        assert not ranker.plan.lazy


@requires_shm
def test_more_shards_than_entities_serves_clamped():
    """The ISSUE-8 crash: --shards 8 on a tiny graph must rank."""
    from repro.config import ModelConfig
    from repro.core import HalkModel
    from repro.kg import KnowledgeGraph
    from repro.queries import Entity, Projection

    rng = np.random.default_rng(5)
    n = 5
    triples = [(int(rng.integers(n)), 0, int(rng.integers(n)))
               for _ in range(10)]
    kg = KnowledgeGraph(n, 1, triples)
    tiny = HalkModel(kg, ModelConfig(embedding_dim=4, seed=0))
    tiny_queries = [Projection(0, Entity(h)) for h, _, _ in triples[:3]]
    embedding, ids, vals = _reference(tiny, tiny_queries, 4)
    with pytest.warns(RuntimeWarning, match="clamping"):
        ranker = ShardedRanker.for_model(tiny, 8)
    with ranker:
        assert ranker.num_shards == n
        got_ids, got_vals = ranker.topk(embedding, 4)
        assert np.array_equal(got_ids, ids)
        assert np.array_equal(got_vals, vals)
        # k beyond the whole vocabulary clips instead of raising
        got_ids, _ = ranker.topk(embedding, 99)
        assert got_ids.shape[-1] == n


@requires_shm
@pytest.mark.serve
def test_serve_runtime_surfaces_clamped_shard_gauge():
    """ServeRuntime(--shards 8) on a tiny graph: serves, and the
    ``shards`` gauge reports the clamped effective count."""
    from repro.config import ModelConfig
    from repro.core import HalkModel
    from repro.kg import KnowledgeGraph
    from repro.queries import Entity, Projection
    from repro.serve import ServeConfig, ServeRuntime

    rng = np.random.default_rng(6)
    n = 6
    triples = [(int(rng.integers(n)), 0, int(rng.integers(n)))
               for _ in range(12)]
    kg = KnowledgeGraph(n, 1, triples)
    tiny = HalkModel(kg, ModelConfig(embedding_dim=4, seed=1))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        with ServeRuntime(tiny, kg=kg,
                          config=ServeConfig(num_shards=8,
                                             num_workers=1)) as runtime:
            gauge = runtime.metrics.gauge("shards").value
            assert gauge == n  # clamped, not the requested 8
            result = runtime.answer(Projection(0, Entity(0)), top_k=3)
            assert len(result.entity_ids) == 3
