"""Property: sharded top-k merge == single-process ranking, exactly.

These tests run entirely in-process (no worker pool): they simulate the
sharded protocol — contiguous partition, per-shard local top-k with
global-id offsets, :func:`repro.dist.merge_topk` reduction — and compare
against ranking the full table at once.  Equality is asserted bitwise on
both ids and values, including ties, for every shard count.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topk import topk_rows
from repro.dist import merge_topk, partition_rows

pytestmark = pytest.mark.dist


def sharded_topk(distances: np.ndarray, num_shards: int, k: int):
    """Reference implementation of what the worker pool computes."""
    ids, vals = [], []
    with warnings.catch_warnings():
        # requesting more shards than entities clamps with a warning;
        # these tests exercise that edge on purpose
        warnings.simplefilter("ignore", RuntimeWarning)
        ranges = partition_rows(distances.shape[-1], num_shards)
    for shard in ranges:
        block = distances[..., shard.start:shard.stop]
        local = topk_rows(block, k)
        ids.append(local + shard.start)
        vals.append(np.take_along_axis(block, local, axis=-1))
    return merge_topk(ids, vals, k)


@settings(max_examples=60, deadline=None)
@given(data=st.data(),
       num_shards=st.integers(min_value=1, max_value=8),
       batch=st.integers(min_value=1, max_value=3),
       k=st.integers(min_value=1, max_value=40))
def test_merge_equals_single_process(data, num_shards, batch, k):
    n = data.draw(st.integers(min_value=num_shards, max_value=64),
                  label="num_entities")
    raw = data.draw(st.lists(
        st.lists(st.integers(min_value=0, max_value=4),
                 min_size=n, max_size=n),
        min_size=batch, max_size=batch), label="distances")
    distances = np.asarray(raw, dtype=np.float64)

    expect_ids = topk_rows(distances, k)
    expect_vals = np.take_along_axis(distances, expect_ids, axis=-1)
    got_ids, got_vals = sharded_topk(distances, num_shards, k)

    assert np.array_equal(got_ids, expect_ids)
    assert np.array_equal(got_vals, expect_vals)


@settings(max_examples=60, deadline=None)
@given(data=st.data(),
       num_shards=st.integers(min_value=1, max_value=12),
       batch=st.integers(min_value=1, max_value=3),
       k=st.integers(min_value=1, max_value=50))
def test_tiny_shards_high_k_equals_single_process(data, num_shards,
                                                  batch, k):
    """The ISSUE-8 edge: entity counts *below* the shard count (clamped
    to one-row shards) and k far beyond any shard's width — the merge
    must clip and stay bitwise equal to the single-process path, never
    raise."""
    n = data.draw(st.integers(min_value=1, max_value=2 * num_shards),
                  label="num_entities")
    # coarse grid => frequent exact ties across shard boundaries
    raw = data.draw(st.lists(
        st.lists(st.integers(min_value=0, max_value=4),
                 min_size=n, max_size=n),
        min_size=batch, max_size=batch), label="distances")
    distances = np.asarray(raw, dtype=np.float64)

    expect_ids = topk_rows(distances, k)
    expect_vals = np.take_along_axis(distances, expect_ids, axis=-1)
    got_ids, got_vals = sharded_topk(distances, num_shards, k)

    assert np.array_equal(got_ids, expect_ids)
    assert np.array_equal(got_vals, expect_vals)


def test_k_larger_than_a_shard():
    """k can exceed every shard's size; the merge must still be exact."""
    rng = np.random.default_rng(0)
    distances = rng.integers(0, 5, size=(4, 40)).astype(np.float64)
    k = 25  # each of 8 shards holds only 5 entities
    expect = topk_rows(distances, k)
    got_ids, got_vals = sharded_topk(distances, 8, k)
    assert np.array_equal(got_ids, expect)
    assert np.array_equal(
        got_vals, np.take_along_axis(distances, expect, axis=-1))


def test_all_ties_order_by_entity_id():
    distances = np.zeros((2, 30))
    ids, vals = sharded_topk(distances, 4, 10)
    assert np.array_equal(ids, np.tile(np.arange(10), (2, 1)))
    assert np.array_equal(vals, np.zeros((2, 10)))


def test_merge_rejects_mismatched_inputs():
    with pytest.raises(ValueError):
        merge_topk([], [], 5)
    with pytest.raises(ValueError):
        merge_topk([np.zeros((1, 2), dtype=np.int64)], [], 5)


def test_partition_rows_is_contiguous_and_balanced():
    for n in (5, 8, 17, 100):
        for k in range(1, min(n, 9) + 1):
            ranges = partition_rows(n, k)
            assert ranges[0].start == 0 and ranges[-1].stop == n
            for left, right in zip(ranges, ranges[1:]):
                assert left.stop == right.start
            sizes = [len(r) for r in ranges]
            assert max(sizes) - min(sizes) <= 1
    with pytest.raises(ValueError):
        partition_rows(3, 0)
    with pytest.raises(ValueError):
        partition_rows(0, 4)


def test_partition_rows_clamps_oversubscription():
    """More shards than rows clamps to one row per shard and warns —
    `cli serve --shards 8` on a tiny graph must serve, not crash."""
    with pytest.warns(RuntimeWarning, match="clamping"):
        ranges = partition_rows(3, 8)
    assert len(ranges) == 3
    assert [(r.start, r.stop) for r in ranges] == [(0, 1), (1, 2), (2, 3)]
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # exact fit must NOT warn
        assert len(partition_rows(4, 4)) == 4
