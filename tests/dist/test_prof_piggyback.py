"""Worker profiles piggyback on shard replies (ISSUE 10 tentpole).

A :class:`WorkerRole` with ``profile_hz > 0`` runs a continuous
sampling profiler for the worker process's lifetime; its folded-stack
deltas ride back on ordinary replies — the same channel as metric
deltas, same staleness rules — and accumulate per ``(role, pid)`` in
``ShardWorkerPool.profiles``.  These tests pin that path end to end
with real spawned workers, plus the merge into one role-tagged
cross-process profile.
"""

import os
import time

import pytest

from repro.dist import ShardedRanker
from repro.obs.prof import merge_profiles

from .conftest import requires_shm

pytestmark = [pytest.mark.dist, pytest.mark.prof, requires_shm]


@pytest.fixture(scope="module")
def profiled_ranker(model):
    ranker = ShardedRanker.for_model(model, 2, profile_hz=200.0)
    assert ranker is not None
    yield ranker
    ranker.close()


def _pump_until_profiled(ranker, embedding, min_samples=4,
                         timeout=10.0):
    """Answer requests until both workers shipped profile deltas."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        ranker.topk(embedding, 5)
        profiles = ranker.pool.profiles.snapshot()
        if (len(profiles) == ranker.num_shards
                and all(p.samples >= min_samples for p in profiles)):
            return profiles
        time.sleep(0.1)  # let the worker-side samplers take passes
    pytest.fail(f"workers never shipped {min_samples} samples each; "
                f"have {[(p.role, p.samples) for p in profiles]}")


class TestWorkerProfilePiggyback:
    def test_worker_profiles_reach_parent_store(self, profiled_ranker,
                                                model, queries):
        embedding = model.embed_batch(queries)
        profiles = _pump_until_profiled(profiled_ranker, embedding)
        by_role = {p.role: p for p in profiles}
        assert set(by_role) == {"shard0", "shard1"}
        worker_pids = set(profiled_ranker.pool.pids())
        for profile in profiles:
            assert profile.pid in worker_pids
            assert profile.pid != os.getpid()
            assert profile.samples > 0
            assert sum(profile.stacks.values()) == profile.samples

    def test_worker_budget_gauges_merge_into_parent(self,
                                                    profiled_ranker,
                                                    model, queries):
        embedding = model.embed_batch(queries)
        _pump_until_profiled(profiled_ranker, embedding)
        gauges = profiled_ranker.metrics.snapshot().gauges
        for shard in range(profiled_ranker.num_shards):
            key = f"prof_effective_hz{{role=shard{shard}}}"
            assert gauges.get(key, 0.0) > 0.0

    def test_merged_cross_process_flame_graph(self, profiled_ranker,
                                              model, queries):
        embedding = model.embed_batch(queries)
        profiles = _pump_until_profiled(profiled_ranker, embedding)
        merged = merge_profiles(profiles)
        assert merged.samples == sum(p.samples for p in profiles)
        roots = {stack.split(";", 1)[0] for stack in merged.stacks}
        # every stack is tagged role@pid — one subtree per process
        for profile in profiles:
            assert f"{profile.role}@{profile.pid}" in roots


class TestUnprofiledDefault:
    def test_zero_hz_ships_no_profiles(self, model, queries):
        ranker = ShardedRanker.for_model(model, 2)  # profile_hz=0
        assert ranker is not None
        try:
            embedding = model.embed_batch(queries)
            for _ in range(3):
                ranker.topk(embedding, 5)
            time.sleep(0.2)
            ranker.topk(embedding, 5)
            assert len(ranker.pool.profiles) == 0
        finally:
            ranker.close()
