"""Request ids through the shard pool: hedges never double-count.

Satellite of the diagnostics layer: a hedged duplicate reply carries the
*original* request id, so flight-recorder entries and exemplars stay
one-per-request no matter who wins the race.  Run with
``fixed_delay=0`` — every request races a parent-side mirror against
the worker — and assert that (1) adopted worker spans and hedge spans
are stamped with exactly the dispatching request's id, (2) the
worker/hedge outcomes partition the shard fan-out, and (3) results
stay bitwise identical to the unhedged reference (the PR 6 invariant,
now with ids flowing).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.topk import topk_rows
from repro.dist import ShardedRanker
from repro.dist.pool import HedgeConfig

from .conftest import requires_shm

pytestmark = [pytest.mark.dist, pytest.mark.diag]


@pytest.fixture(scope="module")
def traced_ranker(model):
    obs.enable()
    ranker = ShardedRanker.for_model(model, 2,
                                     hedge=HedgeConfig(fixed_delay=0.0))
    assert ranker is not None
    yield ranker
    ranker.close()
    obs.disable()


@pytest.fixture(scope="module")
def embedding(model, queries):
    return model.embed_batch(queries)


@requires_shm
class TestHedgedRequestIds:
    def test_shard_info_partitions_the_fanout(self, traced_ranker,
                                              embedding):
        shard_info = {}
        traced_ranker.topk(embedding, 5, request_id="rid-part",
                           shard_info=shard_info)
        assert shard_info["shards"] == 2
        assert 0 <= shard_info["hedge_wins"] <= 2

    def test_spans_carry_the_dispatching_id_only(self, traced_ranker,
                                                 embedding):
        tracer = obs.get_tracer()
        rids = [f"span-rid-{index}" for index in range(5)]
        for rid in rids:
            traced_ranker.topk(embedding, 5, request_id=rid)
        spans = [s for s in tracer.finished()
                 if s.name in ("worker.handle", "shard.hedge")
                 and str(s.attrs.get("request_id", "")).startswith(
                     "span-rid-")]
        assert spans, "no shard spans were adopted into the parent"
        # every span names exactly one of the ids we dispatched — a
        # hedged duplicate must never mint or carry a different id
        assert {s.attrs["request_id"] for s in spans} <= set(rids)

    @settings(max_examples=10, deadline=None)
    @given(k=st.integers(min_value=1, max_value=60))
    def test_ids_and_hedging_never_change_results(self, model,
                                                  traced_ranker,
                                                  embedding, k):
        """Property: with ids flowing and hedges racing, top-k stays
        bitwise identical to the single-process reference and the
        outcome partition accounts for every shard."""
        distances = model.distance_to_all(embedding).data
        expect_ids = topk_rows(distances, k)
        shard_info = {}
        ids, vals = traced_ranker.topk(embedding, k,
                                       request_id=f"rid-k{k}",
                                       shard_info=shard_info)
        assert np.array_equal(ids, expect_ids)
        assert np.array_equal(
            vals, np.take_along_axis(distances, expect_ids, axis=-1))
        assert shard_info["shards"] == 2
        assert 0 <= shard_info["hedge_wins"] <= 2

    def test_exactly_once_counters_hold_with_ids(self, traced_ranker,
                                                 embedding):
        """rank_requests{shard=k} + hedge_wins{shard=k} == N: the PR 6
        exactly-once invariant is unchanged by the id plumbing."""
        metrics = traced_ranker.pool.metrics

        def shard_counts():
            counters = metrics.snapshot().counters
            return {(name, shard): counters.get(
                        f"{name}{{shard={shard}}}", 0)
                    for name in ("rank_requests", "hedge_wins")
                    for shard in range(2)}

        before = shard_counts()
        for index in range(4):
            traced_ranker.topk(embedding, 5,
                               request_id=f"rid-once-{index}")
        after = shard_counts()
        for shard in range(2):
            handled = (after[("rank_requests", shard)]
                       - before[("rank_requests", shard)])
            wins = (after[("hedge_wins", shard)]
                    - before[("hedge_wins", shard)])
            assert handled + wins == 4, \
                f"shard {shard}: {handled} worker + {wins} hedge"
