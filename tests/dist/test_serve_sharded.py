"""ServeRuntime with ``num_shards``: identical answers, live reload."""

import numpy as np
import pytest

from repro.core.topk import topk_rows
from repro.serve import ServeConfig, ServeRuntime

from .conftest import requires_shm

pytestmark = [pytest.mark.dist, requires_shm]


@pytest.fixture(scope="module")
def runtime(model, kg):
    config = ServeConfig(num_shards=2, flush_timeout=0.001)
    with ServeRuntime(model, kg=kg, config=config) as runtime:
        yield runtime


def test_sharded_runtime_matches_direct_ranking(model, runtime, queries):
    results = runtime.answer_batch(queries, top_k=8, timeout=30.0)
    embedding = model.embed_batch(queries)
    expect = topk_rows(model.distance_to_all(embedding).data, 8)
    for row, result in zip(expect, results):
        assert result.source == "model"
        assert result.entity_ids == [int(e) for e in row]


def test_cache_hit_path_agrees_with_batched_path(runtime, queries):
    first = runtime.answer(queries[0], top_k=8, timeout=30.0)
    again = runtime.answer(queries[0], top_k=8, timeout=30.0)
    assert again.entity_ids == first.entity_ids


def test_shards_gauge_reports_pool_width(runtime):
    assert runtime.stats().gauges["shards"] == 2


def test_unsupported_model_falls_back_to_in_process(kg):
    from repro.baselines.cone import ConEModel  # no sharding_spec

    config = ServeConfig(num_shards=2, flush_timeout=0.001)
    with ServeRuntime(ConEModel(kg), kg=kg, config=config) as runtime:
        assert runtime._ranker is None
        assert runtime.stats().gauges["shards"] == 0
