"""Cross-process telemetry: span adoption, metric merge, staleness.

The pool piggybacks each worker's finished spans and metric deltas on
its replies (see ``repro.dist.pool``); these tests pin the guarantees
that makes:

* worker span trees land in the *parent* tracer, re-parented under the
  dispatching span, with the worker's own pid (→ per-process swimlanes
  in the Chrome export) and on the shared ``perf_counter`` timeline;
* parent-merged counters equal the sum of what the workers observed,
  independent of reply interleaving (hypothesis property, in-process);
* telemetry riding on a stale reply is dropped with the reply, and a
  respawned worker's recomputation is counted exactly once;
* the serving runtime's ``/healthz`` flips 503 on a SIGKILLed shard
  worker and back to 200 once supervision respawns it.
"""

import json
import os
import signal
import socket
import time
from urllib.error import HTTPError
from urllib.request import urlopen

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.dist import ShardedRanker
from repro.obs import chrome_trace_events
from repro.obs.metrics import MetricsDelta, MetricsRegistry

from .conftest import requires_shm

pytestmark = [pytest.mark.dist, requires_shm]


@pytest.fixture(scope="module")
def tracer():
    return obs.Tracer()


@pytest.fixture(scope="module")
def ranker(model, tracer):
    ranker = ShardedRanker.for_model(model, 2, tracer=tracer)
    assert ranker is not None
    yield ranker
    ranker.close()


@pytest.fixture(scope="module")
def embedding(model, queries):
    return model.embed_batch(queries)


class TestSpanAdoption:
    def test_worker_spans_land_in_parent_trace(self, tracer, ranker,
                                               embedding):
        tracer.reset()
        with obs.enabled():
            ranker.topk(embedding, 5)
        spans = tracer.finished()
        by_id = {s.span_id: s for s in spans}
        handles = [s for s in spans if s.name == "worker.handle"]
        assert len(handles) == ranker.num_shards

        # pid stamps: one swimlane per worker process, none the parent's
        assert {s.pid for s in handles} == set(ranker.pool.pids())
        assert os.getpid() not in {s.pid for s in handles}

        # internal structure preserved: worker.score stays a child of
        # its own worker.handle, not flattened under the parent span
        scores = [s for s in spans if s.name == "worker.score"]
        assert len(scores) == ranker.num_shards
        for span in scores:
            assert by_id[span.parent_id].name == "worker.handle"

        # re-parenting: each handle hangs off the dispatching span
        for span in handles:
            assert by_id[span.parent_id].name == "shard.dispatch"

    def test_worker_spans_fit_the_gather_window(self, tracer, ranker,
                                                embedding):
        """perf_counter is CLOCK_MONOTONIC (process-shared): adopted
        worker spans must sit inside the parent's dispatch->gather
        window, and no single worker's handle time may exceed the
        window it was measured in (10% slack for clock granularity)."""
        tracer.reset()
        with obs.enabled():
            ranker.topk(embedding, 5)
        spans = tracer.finished()
        dispatch = next(s for s in spans if s.name == "shard.dispatch")
        gather = next(s for s in spans if s.name == "shard.gather")
        window = gather.end - dispatch.start
        for span in (s for s in spans if s.name == "worker.handle"):
            assert span.start >= dispatch.start - 1e-6
            assert span.end <= gather.end + 1e-6
            assert span.duration <= 1.1 * window

    def test_chrome_export_gets_one_swimlane_per_worker(self, tracer,
                                                        ranker,
                                                        embedding):
        tracer.reset()
        with obs.enabled():
            ranker.topk(embedding, 5)
        events = chrome_trace_events(tracer.finished())
        labels = {e["pid"]: e["args"]["name"] for e in events
                  if e["name"] == "process_name"}
        worker_pids = set(ranker.pool.pids())
        assert worker_pids <= set(labels)
        for pid in worker_pids:
            assert labels[pid].startswith("shard-worker")
        parent_label = [v for k, v in labels.items()
                        if k not in worker_pids]
        assert any(v.startswith("parent") for v in parent_label)

    def test_disabled_tracing_ships_no_spans(self, tracer, ranker,
                                             embedding):
        tracer.reset()
        ranker.topk(embedding, 5)  # tracing off
        assert tracer.finished() == []


class TestMetricMerge:
    def test_per_shard_counters_accumulate(self, ranker, embedding):
        before = [ranker.metrics.counter("rank_requests", shard=i).value
                  for i in range(ranker.num_shards)]
        rounds = 3
        for _ in range(rounds):
            ranker.topk(embedding, 5)
        for index in range(ranker.num_shards):
            assert ranker.metrics.counter(
                "rank_requests", shard=index).value == \
                before[index] + rounds

    def test_worker_histograms_merge(self, ranker, embedding):
        ranker.topk(embedding, 5)
        snapshot = ranker.metrics.snapshot()
        for index in range(ranker.num_shards):
            stats = snapshot.histograms[f"rank_block_ms{{shard={index}}}"]
            assert stats.count >= 1
            assert stats.max > 0.0

    def test_metrics_flow_without_tracing(self, ranker, embedding):
        """Prometheus metrics must not require tracing to be enabled."""
        before = ranker.metrics.counter("rank_requests", shard=0).value
        ranker.topk(embedding, 5)  # tracing off
        assert ranker.metrics.counter("rank_requests", shard=0).value \
            == before + 1


class TestMergeInvariant:
    """Order-independence + exactly-once, as a hypothesis property.

    Models the parent/worker delta protocol in-process: each simulated
    worker owns a delta-tracking registry, increments its labelled
    counter, and flushes after every "request"; the parent merges the
    flushed deltas in an arbitrary interleaving.  Stale deltas (the
    pool's discarded replies) are dropped before merging.
    """

    @settings(deadline=None, max_examples=50)
    @given(per_worker=st.lists(
               st.lists(st.integers(min_value=1, max_value=5),
                        min_size=0, max_size=5),
               min_size=1, max_size=4),
           data=st.data())
    def test_any_interleaving_sums_exactly(self, per_worker, data):
        deltas = []
        for worker, increments in enumerate(per_worker):
            registry = MetricsRegistry(track_deltas=True)
            for amount in increments:
                registry.counter("rank_requests", shard=worker).inc(amount)
                registry.histogram("rank_block_ms",
                                   shard=worker).observe(float(amount))
                deltas.append(registry.flush_delta())
        order = data.draw(st.permutations(range(len(deltas))))
        parent = MetricsRegistry()
        for index in order:
            parent.merge(deltas[index])
        snapshot = parent.snapshot()
        for worker, increments in enumerate(per_worker):
            key = f"rank_requests{{shard={worker}}}"
            assert snapshot.counters.get(key, 0) == sum(increments)
            if increments:
                hist = snapshot.histograms[f"rank_block_ms{{shard={worker}}}"]
                assert hist.count == len(increments)

    @settings(deadline=None, max_examples=50)
    @given(increments=st.lists(st.integers(min_value=1, max_value=5),
                               min_size=1, max_size=8),
           stale_mask=st.lists(st.booleans(), min_size=1, max_size=8),
           data=st.data())
    def test_stale_deltas_never_count(self, increments, stale_mask, data):
        registry = MetricsRegistry(track_deltas=True)
        tagged = []
        for position, amount in enumerate(increments):
            registry.counter("rank_requests", shard=0).inc(amount)
            stale = stale_mask[position % len(stale_mask)]
            tagged.append((registry.flush_delta(), stale, amount))
        order = data.draw(st.permutations(range(len(tagged))))
        parent = MetricsRegistry()
        expected = 0
        for index in order:
            delta, stale, amount = tagged[index]
            if stale:  # the pool drops the reply AND its telemetry
                continue
            parent.merge(delta)
            expected += amount
        key = "rank_requests{shard=0}"
        assert parent.snapshot().counters.get(key, 0) == expected


class TestStaleness:
    def test_injected_stale_reply_telemetry_is_dropped(self, ranker,
                                                       embedding):
        """A reply with an old sequence number (what a worker that died
        after computing leaves behind) must not leak its piggybacked
        delta into the parent registry."""
        poison = MetricsDelta(counters={"poison_counter": 1000})
        stale = ("ok", 0, ({"ids": None, "vals": None}, 0.0, 0.0,
                           ([], poison, None)))
        ranker.pool._workers[0].result_q.put(stale)
        time.sleep(0.1)  # let the queue feeder make it visible
        ranker.topk(embedding, 5)  # consumes + discards the stale reply
        assert "poison_counter" not in ranker.metrics.snapshot().counters

    def test_respawned_recomputation_counts_once(self, model, ranker,
                                                 embedding):
        """crash-after-compute: the pre-crash increments die with the
        worker (never shipped), the respawned worker's recomputation is
        merged exactly once — net effect +1, not +2."""
        payload = model.ranking_payload(embedding)
        request = {"mode": "topk", "k": 5, "payload": payload}
        crashing = [dict(request) for _ in range(ranker.num_shards)]
        crashing[0]["crash"] = "after"
        resend = [dict(request) for _ in range(ranker.num_shards)]
        before = ranker.metrics.counter("rank_requests", shard=0).value
        respawns_before = ranker.metrics.counter("worker_respawns",
                                                 worker=0).value
        seq = ranker.pool.dispatch(crashing)
        ranker.pool.gather(seq, resend)
        assert ranker.metrics.counter("rank_requests", shard=0).value \
            == before + 1
        assert ranker.metrics.counter("worker_respawns",
                                      worker=0).value \
            == respawns_before + 1
        assert all(ranker.pool.alive())


class TestHealthFlip:
    def test_healthz_flips_503_on_sigkill_and_recovers(self, model, kg,
                                                       queries):
        from repro.serve import ServeConfig, ServeRuntime

        try:
            probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            probe.bind(("127.0.0.1", 0))
            probe.close()
        except OSError as exc:
            pytest.skip(f"cannot bind a loopback port here: {exc}")

        config = ServeConfig(max_batch_size=4, num_workers=1,
                             num_shards=2, http_port=0)
        with ServeRuntime(model, kg=kg, config=config) as runtime:
            if runtime._ranker is None:
                pytest.skip("sharded ranking unavailable")
            url = runtime.http_server.url

            with urlopen(f"{url}/healthz", timeout=5) as response:
                body = json.loads(response.read().decode())
                assert response.status == 200
                assert body["workers_alive"] == [True, True]

            victim = runtime._ranker.pool.pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            flipped = False
            while time.monotonic() < deadline:
                try:
                    urlopen(f"{url}/healthz", timeout=5)
                except HTTPError as exc:
                    if exc.code == 503:
                        body = json.loads(exc.read().decode())
                        assert False in body["workers_alive"]
                        flipped = True
                        break
                time.sleep(0.05)
            assert flipped, "healthz never reported the dead worker"

            # the next ranking request triggers supervision: respawn,
            # re-send, answer — and health goes green again
            embedding = model.embed_batch(queries)
            runtime._ranker.topk(embedding, 3)
            with urlopen(f"{url}/healthz", timeout=5) as response:
                body = json.loads(response.read().decode())
                assert response.status == 200
                assert body["workers_alive"] == [True, True]
                assert body["worker_respawns"] >= 1
