"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.dataset == "FB237"
        assert args.method == "HaLk"
        assert args.epochs == 150

    def test_answer_requires_sparql(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["answer"])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--method", "TransE"])


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets", "--scale", "0.3"]) == 0
        out = capsys.readouterr().out
        for name in ("FB15k", "FB237", "NELL"):
            assert name in out

    def test_train_evaluate_answer_roundtrip(self, tmp_path, capsys):
        common = ["--dataset", "FB237", "--method", "HaLk", "--dim", "8",
                  "--scale", "0.3", "--model-dir", str(tmp_path)]
        assert main(["train", *common, "--epochs", "3",
                     "--queries", "10"]) == 0
        saved = list(tmp_path.glob("*.npz"))
        assert len(saved) == 1
        meta = json.loads(next(tmp_path.glob("*.json")).read_text())
        assert meta["method"] == "HaLk"

        assert main(["evaluate", *common, "--queries", "3"]) == 0
        out = capsys.readouterr().out
        assert "MRR" in out and "average" in out

    def test_answer_with_trained_model(self, tmp_path, capsys):
        from repro.kg import load_dataset
        common = ["--dataset", "FB237", "--method", "HaLk", "--dim", "8",
                  "--scale", "0.3", "--model-dir", str(tmp_path)]
        main(["train", *common, "--epochs", "2", "--queries", "5"])
        capsys.readouterr()
        splits = load_dataset("FB237", scale=0.3, seed=0)
        head, rel, _ = sorted(splits.train.triples)[0]
        sparql = (f"SELECT ?x WHERE {{ {splits.train.entity_names[head]} "
                  f"{splits.train.relation_names[rel]} ?x }}")
        assert main(["answer", *common, "--sparql", sparql,
                     "--top-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "computation graph" in out

    def test_evaluate_without_model_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="no trained model"):
            main(["evaluate", "--dataset", "FB237", "--method", "HaLk",
                  "--dim", "8", "--scale", "0.3",
                  "--model-dir", str(tmp_path)])

    def test_dim_mismatch_detected(self, tmp_path):
        common = ["--dataset", "FB237", "--dim", "8", "--scale", "0.3",
                  "--model-dir", str(tmp_path)]
        main(["train", *common, "--epochs", "2", "--queries", "5"])
        with pytest.raises(SystemExit, match="different"):
            main(["evaluate", "--dataset", "FB237", "--dim", "16",
                  "--scale", "0.3", "--model-dir", str(tmp_path)])

    def test_baseline_method_trains(self, tmp_path):
        assert main(["train", "--dataset", "FB237", "--method", "NewLook",
                     "--dim", "8", "--scale", "0.3",
                     "--model-dir", str(tmp_path), "--epochs", "2",
                     "--queries", "5"]) == 0


class TestModelMetaValidation:
    def _train(self, tmp_path, method="HaLk"):
        common = ["--dataset", "FB237", "--method", method, "--dim", "8",
                  "--scale", "0.3", "--model-dir", str(tmp_path)]
        main(["train", *common, "--epochs", "2", "--queries", "5"])
        return common

    def test_method_mismatch_detected(self, tmp_path):
        import shutil
        self._train(tmp_path, method="HaLk")
        # simulate weights copied to another method's slot: the meta still
        # says HaLk, so loading as ConE must fail with a clear message
        shutil.copy(tmp_path / "FB237_HaLk.npz", tmp_path / "FB237_ConE.npz")
        shutil.copy(tmp_path / "FB237_HaLk.json", tmp_path / "FB237_ConE.json")
        with pytest.raises(SystemExit, match="method='HaLk'"):
            main(["evaluate", "--dataset", "FB237", "--method", "ConE",
                  "--dim", "8", "--scale", "0.3",
                  "--model-dir", str(tmp_path)])

    def test_dataset_mismatch_detected(self, tmp_path):
        import shutil
        self._train(tmp_path)
        shutil.copy(tmp_path / "FB237_HaLk.npz", tmp_path / "FB15k_HaLk.npz")
        shutil.copy(tmp_path / "FB237_HaLk.json", tmp_path / "FB15k_HaLk.json")
        with pytest.raises(SystemExit, match="dataset='FB237'"):
            main(["evaluate", "--dataset", "FB15k", "--method", "HaLk",
                  "--dim", "8", "--scale", "0.3",
                  "--model-dir", str(tmp_path)])


class TestServeCommand:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.repeat == 3
        assert args.batch_size == 64
        assert not args.stats
        assert not args.gateway and not args.hedge
        assert args.tenant is None and args.tenant_file is None

    def test_serve_reports_stats(self, tmp_path, capsys):
        common = ["--dataset", "FB237", "--method", "HaLk", "--dim", "8",
                  "--scale", "0.3", "--model-dir", str(tmp_path)]
        assert main(["serve", *common, "--train-if-missing",
                     "--train-epochs", "2", "--train-queries", "5",
                     "--queries", "12", "--repeat", "2", "--top-k", "3",
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "pass 1:" in out and "pass 2:" in out
        assert "answer_cache_hit_rate" in out
        assert "p50" in out and "p99" in out
        assert "answer_cache" in out

    def test_serve_explicit_sparql(self, tmp_path, capsys):
        from repro.kg import load_dataset
        common = ["--dataset", "FB237", "--method", "HaLk", "--dim", "8",
                  "--scale", "0.3", "--model-dir", str(tmp_path)]
        main(["train", *common, "--epochs", "2", "--queries", "5"])
        capsys.readouterr()
        splits = load_dataset("FB237", scale=0.3, seed=0)
        head, rel, _ = sorted(splits.train.triples)[0]
        sparql = (f"SELECT ?x WHERE {{ {splits.train.entity_names[head]} "
                  f"{splits.train.relation_names[rel]} ?x }}")
        assert main(["serve", *common, "--sparql", sparql,
                     "--repeat", "1", "--top-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "1 queries" in out

    def test_serve_with_gateway_tenants(self, tmp_path, capsys):
        common = ["--dataset", "FB237", "--method", "HaLk", "--dim", "8",
                  "--scale", "0.3", "--model-dir", str(tmp_path)]
        assert main(["serve", *common, "--train-if-missing",
                     "--train-epochs", "2", "--train-queries", "5",
                     "--queries", "6", "--repeat", "1", "--top-k", "3",
                     "--tenant", "web:500:64:3",
                     "--tenant", "batchers:::1"]) == 0
        out = capsys.readouterr().out
        assert "gateway: admission control on" in out
        assert "web" in out and "batchers" in out

    def test_serve_without_model_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="no trained model"):
            main(["serve", "--dataset", "FB237", "--method", "HaLk",
                  "--dim", "8", "--scale", "0.3",
                  "--model-dir", str(tmp_path)])


class TestTraceCommand:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.structure == "3p"
        assert args.out == "trace.json"
        assert not args.profile

    def test_trace_emits_chrome_trace(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        common = ["--dataset", "FB237", "--method", "HaLk", "--dim", "8",
                  "--scale", "0.3", "--model-dir", str(tmp_path)]
        assert main(["trace", *common, "--train-if-missing",
                     "--train-epochs", "2", "--train-queries", "5",
                     "--structure", "3p", "--top-k", "3",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "serve.request" in out
        payload = json.loads(out_path.read_text())
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        # acceptance: a 3-hop query covers at least 5 distinct stages
        assert len({e["name"] for e in events}) >= 5
        # tracing must be switched back off after the command
        from repro import obs
        assert not obs.is_enabled()

    def test_trace_sparql_with_profile(self, tmp_path, capsys):
        from repro.kg import load_dataset
        common = ["--dataset", "FB237", "--method", "HaLk", "--dim", "8",
                  "--scale", "0.3", "--model-dir", str(tmp_path)]
        main(["train", *common, "--epochs", "2", "--queries", "5"])
        capsys.readouterr()
        splits = load_dataset("FB237", scale=0.3, seed=0)
        head, rel, _ = sorted(splits.train.triples)[0]
        sparql = (f"SELECT ?x WHERE {{ {splits.train.entity_names[head]} "
                  f"{splits.train.relation_names[rel]} ?x }}")
        assert main(["trace", *common, "--sparql", sparql, "--profile",
                     "--out", ""]) == 0
        out = capsys.readouterr().out
        assert "sparql.answer" in out
        assert "fwd ms" in out  # profiler table

class TestCheckpointResume:
    def _common(self, model_dir):
        return ["--dataset", "FB237", "--method", "HaLk", "--dim", "8",
                "--scale", "0.3", "--model-dir", str(model_dir),
                "--queries", "5"]

    def _epoch_losses(self, telemetry_path):
        events = [json.loads(line)
                  for line in telemetry_path.read_text().splitlines()]
        return {e["epoch"]: e["loss"] for e in events
                if e["event"] == "epoch"}

    def test_checkpoint_every_writes_resumable_files(self, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpt"
        assert main(["train", *self._common(tmp_path), "--epochs", "4",
                     "--checkpoint-every", "2",
                     "--checkpoint-dir", str(ckpt_dir)]) == 0
        from repro.ckpt import CheckpointManager, load_checkpoint
        manager = CheckpointManager(ckpt_dir)
        latest = manager.latest()
        assert latest is not None
        checkpoint = load_checkpoint(latest)
        assert checkpoint.manifest.meta["epoch"] == 4
        assert checkpoint.manifest.meta["dataset"] == "FB237"
        assert "trainer" in checkpoint.state  # resumable, not model-only

    def test_resume_continues_same_loss_trajectory(self, tmp_path, capsys):
        """CLI acceptance: interrupt at epoch 3, resume to 6, and the
        per-epoch losses match an uninterrupted 6-epoch run exactly."""
        full_log = tmp_path / "full.jsonl"
        assert main(["train", *self._common(tmp_path / "full"),
                     "--epochs", "6", "--telemetry", str(full_log)]) == 0

        ckpt_dir = tmp_path / "ckpt"
        part = self._common(tmp_path / "part")
        assert main(["train", *part, "--epochs", "3",
                     "--checkpoint-every", "1",
                     "--checkpoint-dir", str(ckpt_dir)]) == 0
        resumed_log = tmp_path / "resumed.jsonl"
        capsys.readouterr()
        assert main(["train", *part, "--epochs", "6", "--resume",
                     "--checkpoint-dir", str(ckpt_dir),
                     "--telemetry", str(resumed_log)]) == 0
        assert "resumed from" in capsys.readouterr().out

        full = self._epoch_losses(full_log)
        resumed = self._epoch_losses(resumed_log)
        assert sorted(resumed) == [4, 5, 6]  # continued, not restarted
        for epoch in (4, 5, 6):
            assert resumed[epoch] == full[epoch]  # bit-for-bit

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path, capsys):
        assert main(["train", *self._common(tmp_path), "--epochs", "2",
                     "--resume",
                     "--checkpoint-dir", str(tmp_path / "empty")]) == 0
        assert "starting fresh" in capsys.readouterr().out

    def test_resume_rejects_mismatched_run(self, tmp_path, capsys):
        ckpt_dir = tmp_path / "ckpt"
        assert main(["train", *self._common(tmp_path), "--epochs", "2",
                     "--checkpoint-every", "1",
                     "--checkpoint-dir", str(ckpt_dir)]) == 0
        with pytest.raises(SystemExit, match="dim"):
            main(["train", "--dataset", "FB237", "--method", "HaLk",
                  "--dim", "16", "--scale", "0.3",
                  "--model-dir", str(tmp_path), "--queries", "5",
                  "--epochs", "3", "--resume",
                  "--checkpoint-dir", str(ckpt_dir)])


class TestTelemetry:
    def test_train_telemetry_stream(self, tmp_path, capsys):
        telemetry = tmp_path / "train.jsonl"
        common = ["--dataset", "FB237", "--method", "HaLk", "--dim", "8",
                  "--scale", "0.3", "--model-dir", str(tmp_path)]
        assert main(["train", *common, "--epochs", "3", "--queries", "5",
                     "--telemetry", str(telemetry)]) == 0
        events = [json.loads(line)
                  for line in telemetry.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "train_begin" and kinds[-1] == "train_end"
        assert kinds.count("epoch") == 3


class TestExplainCommand:
    def test_explain_defaults(self):
        args = build_parser().parse_args(["explain"])
        assert args.structure is None
        assert args.count == 1
        assert not args.json and not args.no_dnf

    def test_explain_sampled_batch_renders_plan(self, capsys):
        assert main(["explain", "--dataset", "FB237", "--scale", "0.3",
                     "--structure", "2i", "--structure", "2i",
                     "--structure", "3p"]) == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "fused stages:" in out
        assert "q0:" in out
        # the second 2i shares the first one's template cache entry
        assert "[plan-cache hit]" in out
        assert "[plan-cache miss]" in out

    def test_explain_json_is_machine_readable(self, capsys):
        assert main(["explain", "--dataset", "FB237", "--scale", "0.3",
                     "--structure", "2i", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_queries"] == 1
        assert payload["ops_total"] == len(payload["ops"]) \
            + payload["ops_saved"]
        assert len(payload["queries"]) == 1
        kinds = {op["kind"] for op in payload["ops"]}
        assert "rank" in kinds

    def test_explain_shared_sparql_marks_cse(self, capsys):
        from repro.kg import load_dataset
        splits = load_dataset("FB237", scale=0.3, seed=0)
        head, rel, _ = sorted(splits.train.triples)[0]
        entity = splits.train.entity_names[head]
        relation = splits.train.relation_names[rel]
        sparql = f"SELECT ?x WHERE {{ {entity} {relation} ?x }}"
        # the same query twice: the whole body is shared, only ranking
        # duplicates
        assert main(["explain", "--dataset", "FB237", "--scale", "0.3",
                     sparql, sparql]) == 0
        out = capsys.readouterr().out
        assert "shared" in out
        assert "saved" in out
