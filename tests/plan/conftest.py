"""Shared fixtures for the query-plan compiler tests.

A graph big enough (60 entities, 5 relations, dense) that the rejection
sampler can ground every supported structure, and a small HaLk model so
the equivalence suites run in tier-1 time.
"""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.core import HalkModel
from repro.kg import KnowledgeGraph
from repro.queries import QuerySampler, get_structure


@pytest.fixture(scope="package")
def kg() -> KnowledgeGraph:
    rng = np.random.default_rng(7)
    triples = {(int(rng.integers(60)), int(rng.integers(5)),
                int(rng.integers(60))) for _ in range(520)}
    return KnowledgeGraph(60, 5, sorted(triples))


@pytest.fixture(scope="package")
def model(kg) -> HalkModel:
    return HalkModel(kg, ModelConfig(embedding_dim=12, hidden_dim=24,
                                     seed=3))


@pytest.fixture(scope="package")
def sampler(kg) -> QuerySampler:
    return QuerySampler(kg, seed=1)


def sample_queries(sampler, structures, per=2):
    """Grounded queries per structure; skips shapes that fail to ground."""
    out = []
    for name in structures:
        for _ in range(per):
            try:
                out.append(sampler.sample(get_structure(name)).query)
            except RuntimeError:
                break
    return out
