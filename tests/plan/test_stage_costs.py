"""Plan-op cost accounting in the fused-stage executor (ISSUE 10).

Every fused stage must land wall seconds / rows / bytes into the
labelled ``plan_stage_*`` metric families and, when the caller passes a
``cost`` dict, accumulate per-kind milliseconds there — the hook the
serve runtime uses to stamp ``plan_stage_ms`` onto flight records.
"""

import pytest

from repro.obs.metrics import MetricsRegistry, parse_metric_key
from repro.plan.compiler import lower
from repro.plan.executor import execute_plan, schedule

from .conftest import sample_queries

pytestmark = [pytest.mark.plan, pytest.mark.prof]

MIX = ["1p", "2p", "2i", "ip"]


@pytest.fixture(scope="module")
def batch(sampler):
    queries = sample_queries(sampler, MIX, per=2)
    assert queries, "sampler failed to ground any structure"
    return queries


def test_stage_metrics_cover_every_fused_stage(model, sampler, batch):
    plan = lower(batch)
    registry = MetricsRegistry()
    groups = execute_plan(plan, model.plan_backend(), registry=registry)
    assert groups  # sanity: the plan actually ran
    snapshot = registry.snapshot()
    stage_keys = [key for key in snapshot.gauges
                  if key.startswith("plan_stage_seconds")]
    # one labelled gauge per scheduled (kind, depth, fused) group, plus
    # the finalize stage
    labels = {(parse_metric_key(key)[1]["kind"],
               parse_metric_key(key)[1]["depth"],
               parse_metric_key(key)[1]["fused"]) for key in stage_keys}
    expected = {(g.kind, str(g.depth), "1" if len(g.ops) > 1 else "0")
                for g in schedule(plan)} | {("finalize", "0", "0")}
    assert labels == expected
    for key in stage_keys:
        assert snapshot.gauges[key] >= 0.0
    # rows counters conserve the op count per kind
    rows_by_kind = {}
    for key, value in snapshot.counters.items():
        if key.startswith("plan_stage_rows"):
            rows_by_kind[parse_metric_key(key)[1]["kind"]] = value
    scheduled_by_kind = {}
    for group in schedule(plan):
        scheduled_by_kind[group.kind] = \
            scheduled_by_kind.get(group.kind, 0) + len(group.ops)
    assert rows_by_kind == scheduled_by_kind
    # bytes counters are integers (the registry renders counters as
    # ints; floats here would corrupt the delta piggyback)
    for key, value in snapshot.counters.items():
        if key.startswith("plan_stage_bytes"):
            assert isinstance(value, int) and value > 0


def test_cost_dict_accumulates_per_kind_milliseconds(model, batch):
    plan = lower(batch)
    cost = {}
    execute_plan(plan, model.plan_backend(),
                 registry=MetricsRegistry(), cost=cost)
    kinds = {g.kind for g in schedule(plan)}
    assert set(cost) == kinds | {"finalize"}
    assert all(value >= 0.0 for value in cost.values())
    # a second batch through the same dict keeps accumulating
    before = dict(cost)
    execute_plan(plan, model.plan_backend(),
                 registry=MetricsRegistry(), cost=cost)
    assert all(cost[kind] >= before[kind] for kind in before)


def test_accounting_does_not_change_results(model, batch):
    """Cost-accounted execution returns the same embeddings as before
    the accounting existed (same backend, fresh registry)."""
    plan = lower(batch)
    plain = execute_plan(plan, model.plan_backend(),
                         registry=MetricsRegistry())
    cost = {}
    accounted = execute_plan(plan, model.plan_backend(),
                             registry=MetricsRegistry(), cost=cost)
    assert [g.positions for g in plain] == \
        [g.positions for g in accounted]
    import numpy as np
    for a, b in zip(plain, accounted):
        assert len(a.embedding.branches) == len(b.embedding.branches)
        np.testing.assert_array_equal(a.embedding.signature,
                                      b.embedding.signature)
        for arc_a, arc_b in zip(a.embedding.branches,
                                b.embedding.branches):
            np.testing.assert_array_equal(arc_a.center.data,
                                          arc_b.center.data)
            np.testing.assert_array_equal(arc_a.length.data,
                                          arc_b.length.data)
