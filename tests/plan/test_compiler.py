"""Lowering, cross-query CSE accounting, and the template cache."""

import pytest

from repro.plan import (AnchorOp, Plan, PlanCompiler, ProjectOp, RankOp,
                        execute_symbolic, instantiate, lower, lower_template,
                        plan_to_json, render_plan, schedule)
from repro.plan.compiler import _Builder
from repro.queries import (Difference, Entity, Intersection, Projection,
                           Union)
from repro.serve.canonical import canonicalize

pytestmark = pytest.mark.plan


def p(rel, node):
    return Projection(rel, node)


def i(*ops):
    return Intersection(tuple(ops))


class TestLowering:
    def test_single_projection_chain(self):
        plan = lower([p(1, p(0, Entity(5)))])
        kinds = [type(op).__name__ for op in plan.ops]
        assert kinds == ["AnchorOp", "ProjectOp", "ProjectOp", "RankOp"]
        assert plan.roots == [3]
        assert plan.ops_saved == 0

    def test_dnf_splits_union_into_branches(self):
        plan = lower([Union((p(0, Entity(1)), p(1, Entity(2))))])
        root = plan.ops[plan.roots[0]]
        assert isinstance(root, RankOp)
        assert len(root.branches) == 2

    def test_non_dnf_keeps_union_op(self):
        plan = lower([Union((p(0, Entity(1)), p(1, Entity(2))))], dnf=False)
        assert any(type(op).__name__ == "UnionOp" for op in plan.ops)
        assert len(plan.ops[plan.roots[0]].branches) == 1

    def test_ssa_validation_rejects_forward_reference(self):
        with pytest.raises(ValueError, match="SSA"):
            Plan([ProjectOp(0, 1), AnchorOp(3), RankOp((0,))], [2])

    def test_root_must_be_rank(self):
        with pytest.raises(ValueError, match="RankOp"):
            Plan([AnchorOp(3)], [0])


class TestCse:
    def test_shared_prefix_computed_once(self):
        shared = p(0, Entity(7))
        queries = [i(shared, p(1, Entity(2))), i(shared, p(2, Entity(3))),
                   p(3, shared)]
        plan = lower(queries)
        # the shared anchor+projection appear once each
        anchors = [op for op in plan.ops if isinstance(op, AnchorOp)]
        assert len([a for a in anchors if a.entity == 7]) == 1
        projections = [op for op in plan.ops
                       if isinstance(op, ProjectOp)]
        assert len([pr for pr in projections
                    if pr.relation == 0]) == 1
        # 3 isolated queries = 6 + 6 + 4 = 16 pre-CSE ops; the shared
        # anchor+projection are deduplicated in queries 2 and 3
        assert plan.ops_total == 16
        assert plan.ops_saved == 4

    def test_identical_queries_share_everything_but_rank(self):
        query = p(0, Entity(4))
        plan = lower([query, query, query])
        ranks = [op for op in plan.ops if isinstance(op, RankOp)]
        assert len(ranks) == 3  # every caller gets an answer
        assert len(plan.ops) == 2 + 3  # anchor + project shared
        assert plan.ops_saved == (3 * 3) - 5

    def test_no_sharing_across_distinct_groundings(self):
        plan = lower([p(0, Entity(1)), p(0, Entity(2))])
        assert plan.ops_saved == 0

    def test_use_counts_mark_shared_values(self):
        shared = p(0, Entity(7))
        plan = lower([i(shared, p(1, Entity(2))), p(3, shared)])
        uses = plan.use_counts()
        shared_value = next(index for index, op in enumerate(plan.ops)
                            if isinstance(op, ProjectOp)
                            and op.relation == 0)
        assert uses[shared_value] == 2


class TestTemplates:
    def test_template_grounds_back_to_original(self, kg):
        query = canonicalize(i(p(0, Entity(7)), p(1, Entity(9))))
        template = lower_template(query)
        assert template.num_anchor_slots == 2
        assert template.num_relation_slots == 2
        from repro.queries import anchors, relations
        builder = _Builder()
        instantiate(template, anchors(query), relations(query), builder)
        plan = builder.plan()
        direct = lower([query], canonical=True)
        assert execute_symbolic(plan, kg) == execute_symbolic(direct, kg)

    def test_instantiate_rejects_slot_mismatch(self):
        template = lower_template(canonicalize(p(0, Entity(1))))
        with pytest.raises(ValueError, match="anchors"):
            instantiate(template, [1, 2], [0], _Builder())

    def test_difference_head_slot_stays_first(self, kg):
        # Difference is not commutative: the head operand must ground
        # into the head slot even after canonical tail sorting.
        query = canonicalize(Difference((p(0, Entity(3)), p(1, Entity(5)))))
        template = lower_template(query)
        from repro.queries import anchors, relations
        builder = _Builder()
        instantiate(template, anchors(query), relations(query), builder)
        assert execute_symbolic(builder.plan(), kg) \
            == execute_symbolic(lower([query], canonical=True), kg)


class TestPlanCache:
    def test_steady_state_hits(self):
        compiler = PlanCompiler()
        queries = [p(0, Entity(1)), p(1, Entity(2))]
        first = compiler.compile(queries)
        second = compiler.compile(queries)
        assert first.cache_misses == 1  # one structure: P(E)
        assert first.cache_hits == 1   # second query reuses it
        assert second.cache_hits == 2
        assert second.cache_misses == 0

    def test_eviction_under_capacity_pressure(self):
        compiler = PlanCompiler(cache_size=2)
        q1 = p(0, Entity(1))                       # P(E)
        q2 = p(0, p(1, Entity(1)))                 # P(P(E))
        q3 = i(p(0, Entity(1)), p(1, Entity(2)))   # I(P(E),P(E))
        compiler.compile([q1])
        compiler.compile([q2])
        compiler.compile([q3])  # capacity 2: evicts the LRU entry (q1)
        assert compiler.cache.stats()["evictions"] == 1
        relowered = compiler.compile([q1])
        assert relowered.cache_misses == 1

    def test_metrics_counters_accumulate(self):
        from repro.obs.metrics import MetricsRegistry
        registry = MetricsRegistry()
        compiler = PlanCompiler(metrics=registry)
        shared = p(0, Entity(7))
        compiler.compile([i(shared, p(1, Entity(2))), p(3, shared)])
        snapshot = registry.snapshot()
        assert snapshot.counters["plan_cache_misses"] == 2
        assert snapshot.counters["plan_cse_ops_saved"] > 0
        assert snapshot.counters["plan_ops_total"] \
            > snapshot.counters["plan_ops_executed"]


class TestScheduleAndExplain:
    def test_stages_respect_dependencies(self):
        from repro.plan import op_inputs
        plan = lower([i(p(0, Entity(1)), p(1, p(2, Entity(2))))])
        depths = plan.depths()
        for group in schedule(plan):
            for index in group.ops:
                assert depths[index] == group.depth
                for value in op_inputs(plan.ops[index]):
                    assert depths[value] < group.depth

    def test_same_depth_same_kind_ops_fuse(self):
        plan = lower([p(0, Entity(1)), p(1, Entity(2)), p(2, Entity(3))])
        stages = schedule(plan)
        assert [(s.kind, len(s.ops)) for s in stages] \
            == [("anchor", 3), ("project", 3)]

    def test_render_marks_shared_and_stages(self):
        shared = p(0, Entity(7))
        plan = lower([i(shared, p(1, Entity(2))), p(3, shared)])
        text = render_plan(plan, structure_keys=["I(P(E),P(E))", "P(P(E))"])
        assert "shared ×2" in text
        assert "fused stages:" in text
        assert "-> q1" in text
        assert "I(P(E),P(E))" in text

    def test_json_round_trips_structure(self):
        plan = lower([i(p(0, Entity(1)), p(1, Entity(2)))])
        payload = plan_to_json(plan, structure_keys=["I(P(E),P(E))"])
        assert payload["num_queries"] == 1
        assert payload["ops_total"] == len(payload["ops"]) \
            + payload["ops_saved"]
        kinds = {op["kind"] for op in payload["ops"]}
        assert kinds == {"anchor", "project", "intersect", "rank"}
        assert all(op["stage"] is not None for op in payload["ops"]
                   if op["kind"] != "rank")
