"""The equivalence proofs: compiled execution == interpretive execution.

Three layers, mirroring the PR 4 sharded==single idiom:

* **Symbolic**: plan execution over sets equals
  :func:`repro.queries.executor.execute` on arbitrary hypothesis-drawn
  query trees (DNF and non-DNF lowering, batched with CSE).
* **Rankings**: compiled model execution returns *identical* top-k
  rankings to the interpretive ``QueryModel.answer_batch`` for every
  supported structure — EPFO ∪ difference ∪ negation, DNF forms
  included — on mixed-structure micro-batches.
* **Bitwise**: the distance rows a compiled batch produces are bitwise
  equal to the interpretive ``embed_batch``/``distance_to_all`` rows
  (in the interpretive ``B ≥ 2`` regime — numpy's lone ``(1, d)``
  matmul kernel differs in the last ulp, which is why the plan backend
  pads single-row stages), and bitwise invariant to how queries are
  batched together.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan import (PlanCompiler, execute_plan, execute_symbolic, lower,
                        plan_answer_batch)
from repro.queries import (Difference, Entity, Intersection, Negation, Node,
                           Projection, Union, execute)
from repro.queries.structures import (DIFFERENCE_STRUCTURES,
                                      EPFO_STRUCTURES, NEGATION_STRUCTURES)
from repro.serve.canonical import canonicalize

from .conftest import sample_queries

pytestmark = pytest.mark.plan

N_ENTITIES = 60
N_RELATIONS = 5


@st.composite
def queries(draw, depth=2) -> Node:
    if depth == 0:
        return Entity(draw(st.integers(0, N_ENTITIES - 1)))
    kind = draw(st.sampled_from(
        ["entity", "projection", "intersection", "union", "difference",
         "negation"]))
    if kind == "entity":
        return Entity(draw(st.integers(0, N_ENTITIES - 1)))
    if kind == "projection":
        return Projection(draw(st.integers(0, N_RELATIONS - 1)),
                          draw(queries(depth=depth - 1)))
    if kind == "negation":
        return Negation(draw(queries(depth=depth - 1)))
    operands = tuple(draw(queries(depth=depth - 1))
                     for _ in range(draw(st.integers(2, 3))))
    if kind == "intersection":
        return Intersection(operands)
    if kind == "union":
        return Union(operands)
    return Difference(operands)


class TestSymbolicEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(queries(), min_size=1, max_size=4))
    def test_plan_execution_equals_interpretive_executor(self, kg, batch):
        want = [execute(canonicalize(q), kg) for q in batch]
        for dnf in (True, False):
            plan = lower(batch, dnf=dnf)
            assert execute_symbolic(plan, kg) == want

    @settings(max_examples=30, deadline=None)
    @given(queries())
    def test_cse_with_duplicated_query_is_sound(self, kg, query):
        # maximal sharing: the same query three times still answers
        # three times, identically
        plan = lower([query, query, query])
        answers = execute_symbolic(plan, kg)
        assert answers == [execute(canonicalize(query), kg)] * 3

    def test_anchor_out_of_vocabulary_raises(self, kg):
        plan = lower([Projection(0, Entity(10_000))])
        with pytest.raises(ValueError, match="anchor"):
            execute_symbolic(plan, kg)


ALL_STRUCTURES = EPFO_STRUCTURES + DIFFERENCE_STRUCTURES \
    + NEGATION_STRUCTURES


class TestRankingEquivalence:
    def test_every_structure_matches_interpretive(self, kg, model, sampler):
        """The acceptance-criterion proof, one structure at a time."""
        for name in ALL_STRUCTURES:
            batch = sample_queries(sampler, [name], per=3)
            assert batch, f"could not ground structure {name}"
            interpretive = model.answer_batch(batch, top_k=10)
            compiled = plan_answer_batch(batch, model, top_k=10)
            assert compiled == interpretive, \
                f"compiled ranking diverged on structure {name}"

    def test_mixed_structure_batch_matches(self, kg, model, sampler):
        batch = sample_queries(sampler, ALL_STRUCTURES, per=2)
        assert len(batch) >= 20
        interpretive = model.answer_batch(batch, top_k=10)
        assert plan_answer_batch(batch, model, top_k=10) == interpretive
        # and through the template cache, twice
        compiler = PlanCompiler()
        assert plan_answer_batch(batch, model, top_k=10,
                                 compiler=compiler) == interpretive
        assert plan_answer_batch(batch, model, top_k=10,
                                 compiler=compiler) == interpretive

    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_random_grounded_batches_match(self, kg, model, sampler, data):
        names = data.draw(st.lists(st.sampled_from(ALL_STRUCTURES),
                                   min_size=1, max_size=6))
        batch = sample_queries(sampler, names, per=1)
        if not batch:
            return
        assert plan_answer_batch(batch, model, top_k=10) \
            == model.answer_batch(batch, top_k=10)


def _compiled_distance_rows(batch, model):
    """(len(batch), N) distance matrix via the compiled path."""
    plan = lower(batch)
    rows = [None] * plan.num_queries
    for group in execute_plan(plan, model.plan_backend()):
        distances = model.distance_to_all(group.embedding).data
        for row, position in enumerate(group.positions):
            rows[position] = distances[row]
    return np.stack(rows)


class TestBitwiseEquivalence:
    def test_compiled_rows_bitwise_equal_interpretive(self, kg, model,
                                                      sampler):
        """Full bitwise distance equality in the interpretive B>=2 regime."""
        for name in ALL_STRUCTURES:
            batch = sample_queries(sampler, [name], per=3)
            if len(batch) < 2:
                continue
            embedding = model.embed_batch([canonicalize(q) for q in batch])
            interpretive = model.distance_to_all(embedding).data
            compiled = _compiled_distance_rows(batch, model)
            assert np.array_equal(compiled, interpretive), \
                f"bitwise divergence on structure {name}"

    def test_batch_composition_invariance(self, kg, model, sampler):
        """A query's compiled bits never depend on its batch-mates."""
        batch = sample_queries(sampler, ALL_STRUCTURES, per=2)
        together = _compiled_distance_rows(batch, model)
        for index, query in enumerate(batch):
            alone = _compiled_distance_rows([query], model)
            assert np.array_equal(alone[0], together[index]), \
                f"batch composition changed bits of query {index}"

    def test_signatures_match_interpretive(self, kg, model, sampler):
        batch = sample_queries(sampler, ALL_STRUCTURES, per=2)
        plan = lower(batch)
        canonical = [canonicalize(q) for q in batch]
        for group in execute_plan(plan, model.plan_backend()):
            for row, position in enumerate(group.positions):
                embedding = model.embed_batch(
                    [canonical[position], canonical[position]])
                assert np.array_equal(group.embedding.signature[row],
                                      embedding.signature[0])
