"""The compiled-plan path wired through the serving runtime.

``ServeConfig(plan_compile=True)`` must be a pure optimisation: identical
answers to the interpretive runtime, same cache semantics, plus the
``plan_*`` counters in ``stats()``/Prometheus and compiled-plan shape
stamps on flight records.
"""

import pytest

from repro.serve import ServeConfig, ServeRuntime
from repro.serve.http import render_prometheus

from .conftest import sample_queries

pytestmark = pytest.mark.plan

MIX = ["1p", "2p", "3p", "2i", "3i", "ip", "pi", "2u", "up", "2d", "dp"]


@pytest.fixture(scope="module")
def workload(sampler_module):
    batch = sample_queries(sampler_module, MIX, per=2)
    assert len(batch) >= 12
    return batch


@pytest.fixture(scope="module")
def sampler_module(kg):
    from repro.queries import QuerySampler
    return QuerySampler(kg, seed=5)


def serve_all(runtime, batch, top_k=5):
    futures = [runtime.submit(q, top_k=top_k) for q in batch]
    return [f.result(timeout=30) for f in futures]


class TestAnswerParity:
    def test_plan_runtime_matches_interpretive_runtime(self, model, kg,
                                                       workload):
        config = ServeConfig(max_batch_size=64, flush_timeout=0.002,
                             num_workers=1)
        with ServeRuntime(model, kg=kg, config=config) as interpretive:
            want = serve_all(interpretive, workload)
        plan_config = ServeConfig(max_batch_size=64, flush_timeout=0.002,
                                  num_workers=1, plan_compile=True)
        with ServeRuntime(model, kg=kg, config=plan_config) as planned:
            got = serve_all(planned, workload)
            for theirs, ours in zip(want, got):
                assert ours.source == "model"
                assert list(ours.entity_ids) == list(theirs.entity_ids)
            # answer + embedding caches still work on the plan path
            again = serve_all(planned, workload)
            assert all(r.source == "answer_cache" for r in again)
            assert [list(r.entity_ids) for r in again] \
                == [list(r.entity_ids) for r in got]


class TestPlanMetrics:
    @pytest.fixture()
    def runtime(self, model, kg):
        config = ServeConfig(max_batch_size=64, flush_timeout=0.002,
                             num_workers=1, plan_compile=True)
        with ServeRuntime(model, kg=kg, config=config) as runtime:
            yield runtime

    def test_counters_in_stats_and_prometheus(self, runtime, workload):
        serve_all(runtime, workload)
        snapshot = runtime.stats()
        counters = snapshot.counters
        assert counters["plan_cache_misses"] > 0
        assert counters["plan_cache_hits"] \
            + counters["plan_cache_misses"] >= len(workload)
        assert counters["plan_ops_total"] >= counters["plan_ops_executed"]
        text = render_prometheus(snapshot)
        assert "repro_plan_cache_hits" in text
        assert "repro_plan_cache_misses" in text
        assert "repro_plan_cse_ops_saved" in text

    def test_flight_records_stamp_plan_shape(self, runtime, workload):
        results = serve_all(runtime, workload)
        records = [runtime.diag.flight.get(r.request_id) for r in results]
        assert all(r is not None for r in records)
        model_records = [r for r in records if r.source == "model"]
        assert model_records
        for record in model_records:
            assert record.plan_ops_total >= record.plan_ops_executed > 0
            assert record.structure  # per-query key survives plan batching

    def test_interpretive_records_have_zero_plan_shape(self, model, kg,
                                                       workload):
        config = ServeConfig(max_batch_size=64, flush_timeout=0.002,
                             num_workers=1)
        with ServeRuntime(model, kg=kg, config=config) as runtime:
            result = runtime.answer(workload[0], top_k=5)
            record = runtime.diag.flight.get(result.request_id)
            assert record.plan_ops_total == 0
            assert record.plan_ops_executed == 0


class TestStructureCoalescing:
    def test_mixed_structures_share_one_micro_batch(self, model, kg,
                                                    workload):
        # plan mode folds every structure into a single "__plan__" group,
        # so one flush serves the whole mixed batch
        config = ServeConfig(max_batch_size=64, flush_timeout=0.05,
                             num_workers=1, plan_compile=True)
        with ServeRuntime(model, kg=kg, config=config) as runtime:
            results = serve_all(runtime, workload)
            sizes = {runtime.diag.flight.get(r.request_id).batch_size
                     for r in results}
            assert max(sizes) > 1
