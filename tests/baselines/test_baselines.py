"""Tests shared across the three baseline models."""

import numpy as np
import pytest

from repro.config import ModelConfig, TrainConfig
from repro.baselines import (ConEModel, MLPMixModel, NewLookModel,
                             UnsupportedOperatorError)
from repro.core import Trainer
from repro.kg import KnowledgeGraph
from repro.queries import (Difference, Entity, GroundedQuery, Intersection,
                           Negation, Projection, QueryWorkload, Union)

CONFIG = ModelConfig(embedding_dim=8, hidden_dim=16, seed=0)


@pytest.fixture(scope="module")
def kg() -> KnowledgeGraph:
    rng = np.random.default_rng(2)
    triples = [(int(rng.integers(15)), int(rng.integers(3)),
                int(rng.integers(15))) for _ in range(50)]
    return KnowledgeGraph(15, 3, triples)


ALL_MODELS = [ConEModel, NewLookModel, MLPMixModel]


@pytest.mark.parametrize("model_cls", ALL_MODELS)
class TestCommonBehaviour:
    def test_embed_projection_batch(self, kg, model_cls):
        model = model_cls(kg, CONFIG)
        emb = model.embed_batch([Projection(0, Entity(i)) for i in range(4)])
        out = model.distance_to_all(emb)
        assert out.shape == (4, kg.num_entities)
        assert np.all(np.isfinite(out.data))

    def test_embed_intersection(self, kg, model_cls):
        model = model_cls(kg, CONFIG)
        query = Intersection((Projection(0, Entity(0)), Projection(1, Entity(1))))
        out = model.distance_to_all(model.embed_batch([query]))
        assert out.shape == (1, kg.num_entities)

    def test_union_handled_by_dnf(self, kg, model_cls):
        model = model_cls(kg, CONFIG)
        a = Projection(0, Entity(0))
        b = Projection(1, Entity(1))
        d_union = model.distance_to_all(model.embed_batch([Union((a, b))])).data
        d_a = model.distance_to_all(model.embed_batch([a])).data
        d_b = model.distance_to_all(model.embed_batch([b])).data
        np.testing.assert_allclose(d_union, np.minimum(d_a, d_b), atol=1e-9)

    def test_distance_to_entities(self, kg, model_cls):
        model = model_cls(kg, CONFIG)
        emb = model.embed_batch([Projection(0, Entity(0))])
        out = model.distance_to_entities(emb, np.array([[1, 2]]))
        assert out.shape == (1, 2)

    def test_trainable(self, kg, model_cls):
        model = model_cls(kg, CONFIG)
        workload = QueryWorkload()
        for head, rel, _ in list(kg)[:8]:
            workload.add(GroundedQuery(
                "1p", Projection(rel, Entity(head)),
                frozenset(kg.targets(head, rel)), frozenset()))
        trainer = Trainer(model, workload,
                          TrainConfig(epochs=15, batch_size=8,
                                      num_negatives=4, learning_rate=5e-3))
        history = trainer.train()
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_no_signature_support(self, kg, model_cls):
        model = model_cls(kg, CONFIG)
        emb = model.embed_batch([Projection(0, Entity(0))])
        assert model.query_signature(emb) is None

    def test_empty_batch_rejected(self, kg, model_cls):
        with pytest.raises(ValueError):
            model_cls(kg, CONFIG).embed_batch([])


class TestOperatorSupportMatrix:
    """Tables I–IV: '-' cells come from unsupported operators."""

    def test_cone_supports_negation_not_difference(self, kg):
        model = ConEModel(kg, CONFIG)
        negation = Intersection((Projection(0, Entity(0)),
                                 Negation(Projection(1, Entity(1)))))
        difference = Difference((Projection(0, Entity(0)),
                                 Projection(1, Entity(1))))
        assert model.supports(negation)
        assert not model.supports(difference)

    def test_newlook_supports_difference_not_negation(self, kg):
        model = NewLookModel(kg, CONFIG)
        negation = Intersection((Projection(0, Entity(0)),
                                 Negation(Projection(1, Entity(1)))))
        difference = Difference((Projection(0, Entity(0)),
                                 Projection(1, Entity(1))))
        assert not model.supports(negation)
        assert model.supports(difference)

    def test_mlpmix_supports_negation_not_difference(self, kg):
        model = MLPMixModel(kg, CONFIG)
        negation = Intersection((Projection(0, Entity(0)),
                                 Negation(Projection(1, Entity(1)))))
        difference = Difference((Projection(0, Entity(0)),
                                 Projection(1, Entity(1))))
        assert model.supports(negation)
        assert not model.supports(difference)

    def test_unsupported_error_carries_context(self, kg):
        model = ConEModel(kg, CONFIG)
        with pytest.raises(UnsupportedOperatorError) as info:
            model.embed_batch([Difference((Projection(0, Entity(0)),
                                           Projection(1, Entity(1))))])
        assert info.value.model_name == "ConE"
        assert info.value.operator == "difference"


class TestConESpecifics:
    def test_linear_negation_is_antipodal(self, kg):
        model = ConEModel(kg, CONFIG)
        child = model.embed_batch([Projection(0, Entity(0))]).branches[0]
        negated = model._embed_negation(child)
        delta = np.mod(negated.center.data - child.center.data, 2 * np.pi)
        np.testing.assert_allclose(delta, np.pi)
        np.testing.assert_allclose(negated.length.data + child.length.data,
                                   2 * np.pi)


class TestNewLookSpecifics:
    def test_offsets_stay_nonnegative(self, kg):
        model = NewLookModel(kg, CONFIG)
        query = Difference((Projection(0, Entity(0)), Projection(1, Entity(1))))
        box = model.embed_batch([query]).branches[0]
        assert np.all(box.offset.data >= 0.0)

    def test_difference_shrinks_head_box(self, kg):
        model = NewLookModel(kg, CONFIG)
        head = model.embed_batch([Projection(0, Entity(0))]).branches[0]
        query = Difference((Projection(0, Entity(0)), Projection(1, Entity(1))))
        diff = model.embed_batch([query]).branches[0]
        assert np.all(diff.offset.data <= head.offset.data + 1e-9)


class TestMLPMixSpecifics:
    def test_no_geometry_in_embedding(self, kg):
        model = MLPMixModel(kg, CONFIG)
        emb = model.embed_batch([Projection(0, Entity(0))])
        # embedding is a plain tensor, no span/size notion
        assert emb.branches[0].shape == (1, CONFIG.embedding_dim)
        assert model.size_penalty(emb) is None
