"""Tests for the HaLk-V1/V2/V3 ablations (Table V)."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.baselines import (ABLATION_VARIANTS, HalkV1, HalkV2, HalkV3,
                             LinearNegation, NewLookStyleDifference,
                             make_halk_variant)
from repro.core import HalkModel
from repro.kg import KnowledgeGraph
from repro.queries import (Difference, Entity, Intersection, Negation,
                           Projection)

CONFIG = ModelConfig(embedding_dim=8, hidden_dim=16, seed=0)


@pytest.fixture(scope="module")
def kg() -> KnowledgeGraph:
    rng = np.random.default_rng(3)
    triples = [(int(rng.integers(12)), int(rng.integers(2)),
                int(rng.integers(12))) for _ in range(40)]
    return KnowledgeGraph(12, 2, triples)


class TestFactory:
    def test_all_variants_constructible(self, kg):
        for name in ("HaLk", "HaLk-V1", "HaLk-V2", "HaLk-V3"):
            model = make_halk_variant(kg, name, CONFIG)
            assert model.name == name

    def test_unknown_variant(self, kg):
        with pytest.raises(KeyError):
            make_halk_variant(kg, "HaLk-V9", CONFIG)

    def test_registry_complete(self):
        assert set(ABLATION_VARIANTS) == {"HaLk-V1", "HaLk-V2", "HaLk-V3"}


class TestV1Difference:
    def test_uses_newlook_style_operator(self, kg):
        assert isinstance(HalkV1(kg, CONFIG).difference, NewLookStyleDifference)

    def test_no_cardinality_constraint(self, kg):
        # V1's difference output can exceed the head input's span
        model = HalkV1(kg, CONFIG)
        rng = np.random.default_rng(0)
        from repro.core import Arc
        from repro.nn import Tensor
        tiny_head = Arc(Tensor(rng.uniform(0, 6, (3, 8))),
                        Tensor(np.full((3, 8), 1e-4)))
        other = Arc(Tensor(rng.uniform(0, 6, (3, 8))),
                    Tensor(rng.uniform(0, 1, (3, 8))))
        out = model.difference([tiny_head, other])
        assert np.any(out.length.data > tiny_head.length.data)

    def test_differs_from_full_model(self, kg):
        full = HalkModel(kg, CONFIG)
        v1 = HalkV1(kg, CONFIG)
        query = Difference((Projection(0, Entity(0)), Projection(1, Entity(1))))
        d_full = full.distance_to_all(full.embed_batch([query])).data
        d_v1 = v1.distance_to_all(v1.embed_batch([query])).data
        assert not np.allclose(d_full, d_v1)


class TestV2Negation:
    def test_uses_linear_negation(self, kg):
        assert isinstance(HalkV2(kg, CONFIG).negation, LinearNegation)

    def test_forward_equals_linear_part(self, kg):
        model = HalkV2(kg, CONFIG)
        child = model.embed_batch([Projection(0, Entity(0))]).branches[0]
        out = model.negation(child)
        linear = model.negation.linear_negation(child)
        np.testing.assert_allclose(out.center.data, linear.center.data)
        np.testing.assert_allclose(out.length.data, linear.length.data)

    def test_projection_identical_to_full_model(self, kg):
        # V2 only swaps negation; shared operators behave identically
        full = HalkModel(kg, CONFIG)
        v2 = HalkV2(kg, CONFIG)
        query = Projection(0, Entity(0))
        np.testing.assert_allclose(
            full.distance_to_all(full.embed_batch([query])).data,
            v2.distance_to_all(v2.embed_batch([query])).data)


class TestV3Projection:
    def test_projection_swapped(self, kg):
        from repro.baselines import IndependentProjection
        assert isinstance(HalkV3(kg, CONFIG).projection, IndependentProjection)

    def test_differs_from_full_model_on_projection(self, kg):
        full = HalkModel(kg, CONFIG)
        v3 = HalkV3(kg, CONFIG)
        query = Projection(0, Entity(0))
        d_full = full.distance_to_all(full.embed_batch([query])).data
        d_v3 = v3.distance_to_all(v3.embed_batch([query])).data
        assert not np.allclose(d_full, d_v3)

    def test_output_ranges_valid(self, kg):
        model = HalkV3(kg, CONFIG)
        query = Projection(0, Projection(1, Entity(0)))
        arc = model.embed_batch([query]).branches[0]
        assert np.all(arc.length.data >= 0.0)
        assert np.all(arc.length.data <= 2 * np.pi + 1e-9)


class TestAllVariantsEmbedEverything:
    @pytest.mark.parametrize("variant", ["HaLk-V1", "HaLk-V2", "HaLk-V3"])
    def test_full_operator_coverage(self, kg, variant):
        model = make_halk_variant(kg, variant, CONFIG)
        query = Intersection((
            Projection(0, Difference((Projection(1, Entity(0)),
                                      Projection(0, Entity(1))))),
            Negation(Projection(1, Entity(2))),
        ))
        out = model.distance_to_all(model.embed_batch([query]))
        assert np.all(np.isfinite(out.data))
