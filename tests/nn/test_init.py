"""Tests for parameter initialisers."""

import numpy as np
import pytest

from repro.nn import init


class TestUniform:
    def test_range(self):
        values = init.uniform((1000,), low=-2.0, high=3.0,
                              rng=np.random.default_rng(0))
        assert values.min() >= -2.0
        assert values.max() < 3.0

    def test_shape(self):
        assert init.uniform((3, 4)).shape == (3, 4)

    def test_deterministic_with_rng(self):
        a = init.uniform((5,), rng=np.random.default_rng(7))
        b = init.uniform((5,), rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestXavier:
    def test_bound_formula(self):
        fan_in, fan_out = 30, 50
        values = init.xavier_uniform((fan_in, fan_out),
                                     rng=np.random.default_rng(0))
        bound = np.sqrt(6.0 / (fan_in + fan_out))
        assert np.abs(values).max() <= bound

    def test_variance_scales_with_fans(self):
        rng = np.random.default_rng(0)
        small = init.xavier_uniform((10, 10), rng=rng)
        large = init.xavier_uniform((1000, 1000), rng=rng)
        assert small.std() > large.std()

    def test_shape(self):
        assert init.xavier_uniform((7, 3)).shape == (7, 3)


class TestDefaultRng:
    def test_seeded_reproducible(self):
        a = init.default_rng(3).random(4)
        b = init.default_rng(3).random(4)
        np.testing.assert_array_equal(a, b)

    def test_unseeded_differs(self):
        # overwhelmingly likely to differ
        a = init.default_rng().random(8)
        b = init.default_rng().random(8)
        assert not np.array_equal(a, b)
