"""Unit tests for the autograd Tensor core."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, no_grad

from .gradcheck import check_gradient


class TestConstruction:
    def test_wraps_array_as_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64
        assert t.shape == (3,)

    def test_requires_grad_default_off(self):
        assert not Tensor([1.0]).requires_grad

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_scalars(self):
        t = as_tensor(2.5)
        assert t.data == pytest.approx(2.5)

    def test_detach_cuts_graph(self):
        t = Tensor([1.0], requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad

    def test_item_scalar(self):
        assert Tensor(3.0).item() == pytest.approx(3.0)

    def test_len(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3


class TestArithmetic:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_scalar(self):
        out = Tensor([1.0]) + 2.0
        np.testing.assert_allclose(out.data, [3.0])

    def test_radd(self):
        out = 2.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [3.0])

    def test_sub(self):
        out = Tensor([5.0]) - Tensor([2.0])
        np.testing.assert_allclose(out.data, [3.0])

    def test_rsub(self):
        out = 5.0 - Tensor([2.0])
        np.testing.assert_allclose(out.data, [3.0])

    def test_mul(self):
        out = Tensor([2.0]) * Tensor([3.0])
        np.testing.assert_allclose(out.data, [6.0])

    def test_div(self):
        out = Tensor([6.0]) / Tensor([3.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_rdiv(self):
        out = 6.0 / Tensor([3.0])
        np.testing.assert_allclose(out.data, [2.0])

    def test_pow(self):
        out = Tensor([3.0]) ** 2
        np.testing.assert_allclose(out.data, [9.0])

    def test_neg(self):
        out = -Tensor([1.0, -2.0])
        np.testing.assert_allclose(out.data, [-1.0, 2.0])

    def test_matmul(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[1.0], [1.0]])
        np.testing.assert_allclose((a @ b).data, [[3.0], [7.0]])


class TestBackward:
    def test_add_grads_both_sides(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_grads(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([5.0], requires_grad=True)
        (a * b).backward()
        np.testing.assert_allclose(a.grad, [5.0])
        np.testing.assert_allclose(b.grad, [2.0])

    def test_div_grads(self):
        check_gradient(lambda t: t / Tensor([2.0, 4.0]), np.array([1.0, 3.0]))
        check_gradient(lambda t: Tensor([1.0, 3.0]) / t, np.array([2.0, 4.0]))

    def test_pow_grad(self):
        check_gradient(lambda t: t ** 3, np.array([1.5, -0.5, 2.0]))

    def test_matmul_grads(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(3, 2))
        check_gradient(lambda t: t @ Tensor(w), rng.normal(size=(4, 3)))
        x = rng.normal(size=(4, 3))
        check_gradient(lambda t: Tensor(x) @ t, w)

    def test_diamond_graph_accumulates(self):
        # y = x*x + x*x must give grad 4x, exercising shared subexpressions.
        x = Tensor([3.0], requires_grad=True)
        y = x * x
        (y + y).backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_reused_leaf_accumulates(self):
        x = Tensor([2.0], requires_grad=True)
        (x * 3 + x * 4).backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_broadcast_add_unbroadcasts_grad(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, 3 * np.ones(4))

    def test_broadcast_mul_grad_values(self):
        rng = np.random.default_rng(1)
        b = rng.normal(size=(4,))
        check_gradient(lambda t: t * Tensor(b), rng.normal(size=(3, 4)))

    def test_backward_requires_scalar_without_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_no_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_with_explicit_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 2).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [2.0, 20.0])

    def test_second_backward_accumulates_on_leaf(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        (x * 2).backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None


class TestNoGrad:
    def test_no_grad_blocks_recording(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_no_grad_restores_flag(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            pass
        assert (x * 2).requires_grad

    def test_no_grad_restores_after_exception(self):
        x = Tensor([1.0], requires_grad=True)
        try:
            with no_grad():
                raise ValueError
        except ValueError:
            pass
        assert (x * 2).requires_grad


class TestIndexingShaping:
    def test_getitem_forward(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(t[0].data, [1.0, 2.0])

    def test_getitem_grad_scatters(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]], requires_grad=True)
        t[1].sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 0.0], [1.0, 1.0]])

    def test_getitem_fancy_index_repeats_accumulate(self):
        t = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        t[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 0.0, 1.0])

    def test_reshape_roundtrip_grad(self):
        t = Tensor(np.arange(6.0), requires_grad=True)
        t.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(t.grad, np.ones(6))

    def test_reshape_accepts_tuple(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape((3, 2)).shape == (3, 2)

    def test_transpose(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = t.transpose()
        assert out.shape == (3, 2)
        out.sum().backward()
        assert t.grad.shape == (2, 3)

    def test_transpose_axes_grad(self):
        rng = np.random.default_rng(2)
        check_gradient(lambda t: t.transpose(1, 0, 2) * 2.0,
                       rng.normal(size=(2, 3, 4)))


class TestReductions:
    def test_sum_all(self):
        assert Tensor([[1.0, 2.0], [3.0, 4.0]]).sum().item() == pytest.approx(10.0)

    def test_sum_axis_keepdims(self):
        out = Tensor(np.ones((2, 3))).sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_sum_axis_grad(self):
        check_gradient(lambda t: t.sum(axis=0) * Tensor([1.0, 2.0, 3.0]),
                       np.random.default_rng(3).normal(size=(4, 3)))

    def test_mean(self):
        assert Tensor([2.0, 4.0]).mean().item() == pytest.approx(3.0)

    def test_mean_axis_grad(self):
        check_gradient(lambda t: t.mean(axis=1),
                       np.random.default_rng(4).normal(size=(3, 5)))

    def test_min_reduce(self):
        assert Tensor([3.0, 1.0, 2.0]).min().item() == pytest.approx(1.0)

    def test_max_reduce_grad_goes_to_argmax(self):
        t = Tensor([1.0, 5.0, 2.0], requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_min_reduce_axis(self):
        out = Tensor([[3.0, 1.0], [0.0, 2.0]]).min(axis=0)
        np.testing.assert_allclose(out.data, [0.0, 1.0])

    def test_min_ties_split_gradient(self):
        t = Tensor([1.0, 1.0], requires_grad=True)
        t.min().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5])
