"""Unit tests for optimizers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter, Tensor


def quadratic_loss(param: Parameter) -> Tensor:
    # Loss (p - 3)^2 with unique minimum at 3.
    return ((param - 3.0) ** 2).sum()


class TestSGD:
    def test_rejects_empty_parameters(self):
        with pytest.raises(ValueError):
            SGD([])

    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter([0.0])], lr=0.0)

    def test_single_step_direction(self):
        p = Parameter([0.0])
        opt = SGD([p], lr=0.1)
        quadratic_loss(p).backward()
        opt.step()
        # grad = 2*(0-3) = -6; p <- 0 - 0.1*(-6) = 0.6
        np.testing.assert_allclose(p.data, [0.6])

    def test_converges_on_quadratic(self):
        p = Parameter([0.0])
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [3.0], atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter([0.0])
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            return abs(p.data[0] - 3.0)

        assert run(0.9) < run(0.0)

    def test_skips_parameters_without_grad(self):
        p = Parameter([1.0])
        q = Parameter([1.0])
        opt = SGD([p, q], lr=0.1)
        quadratic_loss(p).backward()
        opt.step()
        np.testing.assert_allclose(q.data, [1.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter([10.0])
        opt = Adam([p], lr=0.3)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [3.0], atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, the first Adam step has magnitude ~lr.
        p = Parameter([0.0])
        opt = Adam([p], lr=0.1)
        quadratic_loss(p).backward()
        opt.step()
        np.testing.assert_allclose(abs(p.data[0]), 0.1, rtol=1e-5)

    def test_handles_ill_conditioned_scales(self):
        # One coordinate has gradients 100x the other; Adam should still
        # move both towards the optimum at a comparable pace.
        p = Parameter([0.0, 0.0])
        target = np.array([1.0, 1.0])
        opt = Adam([p], lr=0.05)
        scale = Tensor([100.0, 1.0])
        for _ in range(500):
            opt.zero_grad()
            ((scale * (p - Tensor(target))) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-2)

    def test_zero_grad_via_optimizer(self):
        p = Parameter([0.0])
        opt = Adam([p])
        quadratic_loss(p).backward()
        opt.zero_grad()
        assert p.grad is None
