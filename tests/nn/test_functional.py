"""Unit tests for repro.nn.functional operations."""

import numpy as np
import pytest

from repro.nn import F, Tensor

from .gradcheck import check_gradient


class TestElementwise:
    def test_exp_forward(self):
        np.testing.assert_allclose(F.exp(Tensor([0.0, 1.0])).data, [1.0, np.e])

    def test_exp_grad(self):
        check_gradient(F.exp, np.array([-1.0, 0.5, 2.0]))

    def test_log_grad(self):
        check_gradient(F.log, np.array([0.5, 1.0, 3.0]))

    def test_sqrt_grad(self):
        check_gradient(F.sqrt, np.array([0.25, 1.0, 4.0]))

    def test_tanh_grad(self):
        check_gradient(F.tanh, np.array([-2.0, 0.0, 1.5]))

    def test_sigmoid_forward_extremes_stable(self):
        out = F.sigmoid(Tensor([-1000.0, 0.0, 1000.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-12)

    def test_sigmoid_grad(self):
        check_gradient(F.sigmoid, np.array([-3.0, 0.1, 2.0]))

    def test_relu_forward(self):
        np.testing.assert_allclose(F.relu(Tensor([-1.0, 2.0])).data, [0.0, 2.0])

    def test_relu_grad(self):
        check_gradient(F.relu, np.array([-1.0, 0.5, 2.0]))

    def test_abs_grad(self):
        check_gradient(F.abs_, np.array([-2.0, 0.7, 3.0]))

    def test_sign_zero_grad(self):
        t = Tensor([-2.0, 3.0], requires_grad=True)
        F.sign(t).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 0.0])

    def test_sin_cos_grads(self):
        check_gradient(F.sin, np.array([0.0, 1.0, np.pi]))
        check_gradient(F.cos, np.array([0.0, 1.0, np.pi]))

    def test_arctan2_forward_quadrants(self):
        out = F.arctan2(Tensor([1.0, -1.0]), Tensor([-1.0, -1.0]))
        np.testing.assert_allclose(out.data, [3 * np.pi / 4, -3 * np.pi / 4])

    def test_arctan2_grads(self):
        rng = np.random.default_rng(0)
        y = rng.normal(size=5) + 2.0
        x = rng.normal(size=5) + 2.0
        check_gradient(lambda t: F.arctan2(t, Tensor(x)), y)
        check_gradient(lambda t: F.arctan2(Tensor(y), t), x)

    def test_clip_forward_and_grad_region(self):
        t = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        F.clip(t, -1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_mod_wraps(self):
        out = F.mod(Tensor([7.0, -1.0]), 2.0 * np.pi)
        np.testing.assert_allclose(out.data, [7.0 - 2 * np.pi, 2 * np.pi - 1.0])

    def test_wrap_angle_range(self):
        out = F.wrap_angle(Tensor(np.linspace(-10, 10, 21)))
        assert np.all(out.data >= 0.0) and np.all(out.data < 2 * np.pi)

    def test_wrap_angle_grad_passthrough(self):
        t = Tensor([7.0], requires_grad=True)
        F.wrap_angle(t).backward()
        np.testing.assert_allclose(t.grad, [1.0])


class TestPairwise:
    def test_maximum_forward(self):
        out = F.maximum(Tensor([1.0, 5.0]), Tensor([3.0, 2.0]))
        np.testing.assert_allclose(out.data, [3.0, 5.0])

    def test_minimum_grad_selects_smaller(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        F.minimum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])

    def test_extreme_tie_splits(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        F.maximum(a, b).backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [0.5])

    def test_where_selects(self):
        out = F.where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([9.0, 9.0]))
        np.testing.assert_allclose(out.data, [1.0, 9.0])

    def test_where_grad_masks(self):
        a = Tensor([1.0, 1.0], requires_grad=True)
        b = Tensor([9.0, 9.0], requires_grad=True)
        F.where(np.array([True, False]), a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestStructural:
    def test_concat_forward(self):
        out = F.concat([Tensor([[1.0]]), Tensor([[2.0]])], axis=1)
        np.testing.assert_allclose(out.data, [[1.0, 2.0]])

    def test_concat_grad_splits(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = F.concat([a, b], axis=1) * Tensor(np.arange(10.0).reshape(2, 5))
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0], [5.0, 6.0]])
        np.testing.assert_allclose(b.grad, [[2.0, 3.0, 4.0], [7.0, 8.0, 9.0]])

    def test_stack_forward(self):
        out = F.stack([Tensor([1.0, 2.0]), Tensor([3.0, 4.0])], axis=0)
        assert out.shape == (2, 2)

    def test_stack_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (F.stack([a, b], axis=0) * Tensor([[1.0, 2.0], [3.0, 4.0]])).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])
        np.testing.assert_allclose(b.grad, [3.0, 4.0])

    def test_softmax_rows_sum_to_one(self):
        out = F.softmax(Tensor(np.random.default_rng(1).normal(size=(4, 6))), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_softmax_stable_for_large_inputs(self):
        out = F.softmax(Tensor([1000.0, 1000.0]), axis=-1)
        np.testing.assert_allclose(out.data, [0.5, 0.5])

    def test_softmax_grad(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(3, 4))
        check_gradient(lambda t: F.softmax(t, axis=-1) * Tensor(w),
                       rng.normal(size=(3, 4)))

    def test_logsumexp_matches_naive(self):
        x = np.random.default_rng(3).normal(size=(5, 7))
        out = F.logsumexp(Tensor(x), axis=1)
        np.testing.assert_allclose(out.data, np.log(np.exp(x).sum(axis=1)))

    def test_l1_norm(self):
        out = F.l1_norm(Tensor([[-1.0, 2.0], [3.0, -4.0]]), axis=1)
        np.testing.assert_allclose(out.data, [3.0, 7.0])


class TestGatherRows:
    def test_gather_forward(self):
        table = Tensor(np.arange(12.0).reshape(4, 3))
        out = F.gather_rows(table, [2, 0])
        np.testing.assert_allclose(out.data, [[6.0, 7.0, 8.0], [0.0, 1.0, 2.0]])

    def test_gather_grad_scatter_adds(self):
        table = Tensor(np.zeros((4, 2)), requires_grad=True)
        F.gather_rows(table, [1, 1, 3]).sum().backward()
        np.testing.assert_allclose(table.grad,
                                   [[0, 0], [2, 2], [0, 0], [1, 1]])

    def test_gather_2d_index(self):
        table = Tensor(np.arange(8.0).reshape(4, 2), requires_grad=True)
        out = F.gather_rows(table, np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 2)
        out.sum().backward()
        np.testing.assert_allclose(table.grad, np.ones((4, 2)))
