"""Unit tests for nn modules (Linear, MLP, Embedding, Module machinery)."""

import numpy as np
import pytest

from repro.nn import MLP, Adam, Embedding, Linear, Module, Parameter, Sequential, Tensor, F


class TestModuleMachinery:
    def test_parameters_recurse_submodules(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 3)
                self.b = Linear(3, 1)

        params = list(Net().parameters())
        assert len(params) == 4  # two weights + two biases

    def test_parameters_deduplicated_when_shared(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 2)
                self.b = self.a

        assert len(list(Net().parameters())) == 2

    def test_named_parameters_paths(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.layer = Linear(2, 2)

        names = dict(Net().named_parameters())
        assert "layer.weight" in names and "layer.bias" in names

    def test_zero_grad_clears(self):
        layer = Linear(2, 1)
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_num_parameters(self):
        layer = Linear(3, 4)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_state_dict_roundtrip(self):
        src = Linear(2, 2, rng=np.random.default_rng(0))
        dst = Linear(2, 2, rng=np.random.default_rng(1))
        dst.load_state_dict(src.state_dict())
        np.testing.assert_allclose(src.weight.data, dst.weight.data)

    def test_load_state_dict_rejects_mismatch(self):
        layer = Linear(2, 2)
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": np.zeros((2, 2))})

    def test_load_state_dict_rejects_bad_shape(self):
        layer = Linear(2, 2)
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(4, 3)
        assert layer(Tensor(np.zeros((5, 4)))).shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_affine_computation(self):
        layer = Linear(2, 1)
        layer.weight.data[...] = [[2.0], [3.0]]
        layer.bias.data[...] = [1.0]
        out = layer(Tensor([[1.0, 1.0]]))
        np.testing.assert_allclose(out.data, [[6.0]])


class TestMLP:
    def test_forward_shape(self):
        mlp = MLP(6, 8, 3, num_hidden_layers=2)
        assert mlp(Tensor(np.zeros((4, 6)))).shape == (4, 3)

    def test_invalid_activation_raises(self):
        with pytest.raises(ValueError):
            MLP(2, 2, 2, activation="nope")

    def test_all_activations_run(self):
        for act in ("relu", "tanh", "sigmoid"):
            mlp = MLP(2, 4, 2, activation=act)
            assert mlp(Tensor(np.ones((1, 2)))).shape == (1, 2)

    def test_gradients_reach_all_layers(self):
        mlp = MLP(3, 5, 2, num_hidden_layers=2, rng=np.random.default_rng(0))
        mlp(Tensor(np.random.default_rng(1).normal(size=(4, 3)))).sum().backward()
        for param in mlp.parameters():
            assert param.grad is not None

    def test_can_fit_xor(self):
        # A smoke test that the whole stack (modules + autograd + Adam)
        # actually learns: XOR is not linearly separable.
        rng = np.random.default_rng(0)
        x = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
        y = np.array([[0.0], [1.0], [1.0], [0.0]])
        mlp = MLP(2, 8, 1, activation="tanh", rng=rng)
        opt = Adam(mlp.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            pred = F.sigmoid(mlp(Tensor(x)))
            loss = ((pred - Tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
        final = F.sigmoid(mlp(Tensor(x))).data
        assert np.all(np.abs(final - y) < 0.2)


class TestSequential:
    def test_applies_in_order(self):
        seq = Sequential(Linear(2, 4), Linear(4, 1))
        assert seq(Tensor(np.zeros((3, 2)))).shape == (3, 1)

    def test_registers_parameters(self):
        seq = Sequential(Linear(2, 4), Linear(4, 1))
        assert len(list(seq.parameters())) == 4


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4)
        assert emb([1, 2, 3]).shape == (3, 4)

    def test_gradient_only_on_touched_rows(self):
        emb = Embedding(5, 2, rng=np.random.default_rng(0))
        emb([1, 3]).sum().backward()
        grad = emb.weight.grad
        np.testing.assert_allclose(grad[[0, 2, 4]], 0.0)
        np.testing.assert_allclose(grad[[1, 3]], 1.0)

    def test_custom_init_range(self):
        emb = Embedding(100, 8, low=0.0, high=2 * np.pi,
                        rng=np.random.default_rng(0))
        assert emb.weight.data.min() >= 0.0
        assert emb.weight.data.max() < 2 * np.pi
