"""Numerical gradient checking utilities for the autograd engine tests."""

from __future__ import annotations

import numpy as np

from repro.nn import Tensor


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``fn`` at ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        hi = fn(x.copy())
        flat[i] = original - eps
        lo = fn(x.copy())
        flat[i] = original
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradient(op, x: np.ndarray, atol: float = 1e-5, rtol: float = 1e-4) -> None:
    """Assert that autograd and numerical gradients of ``op`` agree.

    ``op`` maps a Tensor to a Tensor; the check reduces the output with
    ``sum()`` to obtain a scalar loss.
    """

    def scalar_fn(values: np.ndarray) -> float:
        t = Tensor(values, requires_grad=True)
        return float(op(t).sum().data)

    t = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
    loss = op(t).sum()
    loss.backward()
    analytic = t.grad
    numeric = numerical_grad(scalar_fn, np.asarray(x, dtype=np.float64))
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)
