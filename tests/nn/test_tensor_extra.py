"""Additional autograd edge-case tests (broadcasting, deep graphs)."""

import numpy as np
import pytest

from repro.nn import F, Tensor

from .gradcheck import check_gradient


class TestBroadcastingEdgeCases:
    def test_scalar_broadcast_to_matrix(self):
        s = Tensor(2.0, requires_grad=True)
        m = Tensor(np.ones((3, 4)))
        (s * m).sum().backward()
        np.testing.assert_allclose(s.grad, 12.0)

    def test_row_and_column_broadcast(self):
        row = Tensor(np.ones((1, 4)), requires_grad=True)
        col = Tensor(np.ones((3, 1)), requires_grad=True)
        (row + col).sum().backward()
        np.testing.assert_allclose(row.grad, np.full((1, 4), 3.0))
        np.testing.assert_allclose(col.grad, np.full((3, 1), 4.0))

    def test_three_dim_broadcast_grad(self):
        rng = np.random.default_rng(0)
        b = rng.normal(size=(1, 5, 1))
        check_gradient(lambda t: t * Tensor(b), rng.normal(size=(2, 5, 3)))

    def test_division_broadcast_grad(self):
        rng = np.random.default_rng(1)
        b = rng.normal(size=(4,)) + 3.0
        check_gradient(lambda t: t / Tensor(b), rng.normal(size=(2, 4)))


class TestDeepGraphs:
    def test_long_chain_gradient(self):
        # 200 chained adds: gradient is exactly 1, no recursion blowup
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(200):
            y = y + 0.01
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_wide_fanout_accumulates(self):
        x = Tensor([2.0], requires_grad=True)
        total = None
        for i in range(50):
            term = x * float(i)
            total = term if total is None else total + term
        total.backward()
        np.testing.assert_allclose(x.grad, [sum(range(50))])

    def test_shared_subexpression_counted_once_per_use(self):
        x = Tensor([3.0], requires_grad=True)
        shared = x * 2          # dy/dx = 2
        out = shared * shared   # y = 4x^2, dy/dx = 8x = 24
        out.backward()
        np.testing.assert_allclose(x.grad, [24.0])

    def test_detached_branch_blocks_gradient(self):
        x = Tensor([5.0], requires_grad=True)
        y = (x * 2).detach() * x  # only the second factor carries grad
        y.backward()
        np.testing.assert_allclose(x.grad, [10.0])


class TestCompositeExpressions:
    def test_attention_like_block(self):
        # softmax(xW) weighted sum — the shape of the operator attention
        rng = np.random.default_rng(2)
        w = rng.normal(size=(4, 4))
        values = rng.normal(size=(3, 4))

        def block(t):
            weights = F.softmax(t @ Tensor(w), axis=-1)
            return weights * Tensor(values)

        check_gradient(block, rng.normal(size=(3, 4)))

    def test_chord_distance_block(self):
        # the Eq. 16 building block: |sin((a-b)/2)| summed
        rng = np.random.default_rng(3)
        b = rng.uniform(0, 2 * np.pi, size=(3, 4))

        def block(t):
            return F.abs_(F.sin((t - Tensor(b)) / 2.0))

        check_gradient(block, rng.uniform(0.1, 6.0, size=(3, 4)))

    def test_rectangular_roundtrip_block(self):
        # Eq. 4-6: angle -> (cos, sin) -> weighted sum -> arctan2
        rng = np.random.default_rng(4)
        w = rng.uniform(0.2, 0.8, size=(3, 4))

        def block(t):
            x = Tensor(w) * F.cos(t)
            y = Tensor(w) * F.sin(t)
            return F.arctan2(y, x + 2.0)  # +2 keeps x away from 0

        check_gradient(block, rng.uniform(-1.0, 1.0, size=(3, 4)))
