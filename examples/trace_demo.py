"""Observability end to end: tracing, profiling, training telemetry.

Walks the whole ``repro.obs`` surface on a small FB237 analogue:

1. **training telemetry** — the trainer publishes per-epoch
   :class:`~repro.obs.EpochStats` (loss, gradient norm, samples/sec,
   per-operator-network time) to callbacks; here a JSONL sink plus the
   console logger;
2. **hierarchical tracing** — a multi-hop query served through
   :class:`~repro.serve.ServeRuntime` produces a span tree covering
   every stage (request → canonicalise / cache lookup / queue / embed /
   distance / rank), rendered as ASCII and exported as a Chrome trace
   you can open at ``chrome://tracing`` or https://ui.perfetto.dev;
3. **autograd profiling** — the same query re-answered under
   :class:`~repro.obs.Profiler` shows per-op forward/backward time and
   allocation, and per-module forward cost.

Run with::

    python examples/trace_demo.py
"""

import io
import json

from repro import obs
from repro.config import ModelConfig, TrainConfig
from repro.core import HalkModel, Trainer
from repro.kg import fb237_mini
from repro.queries import QuerySampler, build_workloads, get_structure
from repro.serve import ServeConfig, ServeRuntime, format_snapshot


def main() -> None:
    splits = fb237_mini(scale=0.3)
    kg = splits.train
    bundle = build_workloads(splits, queries_per_structure=30,
                             eval_queries_per_structure=5, seed=0)
    model = HalkModel(kg, ModelConfig(embedding_dim=12, hidden_dim=24,
                                      seed=0))

    # 1. training telemetry: console line + JSONL event stream
    telemetry = io.StringIO()
    print("--- training telemetry")
    Trainer(model, bundle.train,
            TrainConfig(epochs=10, batch_size=128, num_negatives=8,
                        learning_rate=2e-3, embedding_learning_rate=2e-2,
                        log_every=5),
            callbacks=[obs.JsonlTelemetry(telemetry)]).train()
    last_epoch = json.loads(telemetry.getvalue().strip().splitlines()[-2])
    print(f"    last epoch event: loss={last_epoch['loss']:.4f} "
          f"grad_norm={last_epoch['grad_norm']:.3f} "
          f"{last_epoch['samples_per_sec']:.0f} samples/s")
    operators = last_epoch["operator_seconds"]
    for name in sorted(operators, key=operators.get, reverse=True)[:3]:
        print(f"    {name:<22} {1000 * operators[name]:7.1f} ms/epoch")

    # 2. serve a 3-hop query with tracing on; export the span tree
    obs.enable()
    tracer = obs.Tracer()
    sampler = QuerySampler(kg, splits.test, seed=3)
    query = sampler.sample(get_structure("3p")).query
    with ServeRuntime(model, kg=kg, tracer=tracer,
                      config=ServeConfig(num_workers=2)) as runtime:
        result = runtime.answer(query, top_k=5, timeout=30.0)
        snapshot = runtime.stats()
    print("--- span tree of one served 3p query "
          f"(source={result.source})")
    print(obs.format_span_tree(tracer.finished()))
    count = obs.write_chrome_trace("trace.json", tracer.finished())
    print(f"    wrote {count} events to trace.json "
          "(open at https://ui.perfetto.dev)")
    print(format_snapshot(snapshot, title="serve stats"))
    obs.disable()

    # 3. profile the model's answer path: per-op and per-module cost
    with obs.Profiler() as profiler:
        model.answer(query, top_k=5)
    print("--- autograd profile of model.answer")
    print(profiler.table(limit=8))


if __name__ == "__main__":
    main()
