"""SPARQL answering with the HaLk executor (paper §IV-F, Fig. 7).

Shows the full pipeline: SPARQL text -> parser -> Adaptor (graph patterns
to the five logical operators) -> computation graph -> executor, with both
the embedding executor (HaLk) and the subgraph-matching executor (GFinder)
side by side.

Run with::

    python examples/sparql_demo.py
"""

from repro.config import ModelConfig, TrainConfig
from repro.core import HalkModel, Trainer
from repro.kg import fb237_mini
from repro.queries import build_workloads
from repro.sparql import SparqlEngine


def main() -> None:
    splits = fb237_mini(scale=0.4)
    kg = splits.train

    # train a small HaLk model to serve as the embedding executor
    bundle = build_workloads(splits, queries_per_structure=40,
                             eval_queries_per_structure=5, seed=0)
    model = HalkModel(kg, ModelConfig(embedding_dim=16, hidden_dim=32, seed=0))
    Trainer(model, bundle.train,
            TrainConfig(epochs=40, batch_size=128, num_negatives=16,
                        learning_rate=2e-3,
                        embedding_learning_rate=2e-2)).train()

    engine = SparqlEngine(kg, model=model)

    # pick real vocabulary so the demo queries are satisfiable
    head, rel, mid = sorted(kg.triples)[0]
    rel2 = next(iter(kg.out_relations(mid)), rel)
    e = kg.entity_names
    r = kg.relation_names

    queries = {
        "projection chain (P)":
            f"SELECT ?x WHERE {{ {e[head]} {r[rel]} ?m . "
            f"?m {r[rel2]} ?x . }}",
        "union (U)":
            f"SELECT ?x WHERE {{ {{ {e[head]} {r[rel]} ?x }} UNION "
            f"{{ {e[mid]} {r[rel2]} ?x }} }}",
        "difference (D, via MINUS)":
            f"SELECT ?x WHERE {{ {e[head]} {r[rel]} ?x . "
            f"MINUS {{ {e[mid]} {r[rel2]} ?x }} }}",
        "negation (N, via FILTER NOT EXISTS)":
            f"SELECT ?x WHERE {{ {e[head]} {r[rel]} ?x . "
            f"FILTER NOT EXISTS {{ {e[mid]} {r[rel2]} ?x }} }}",
    }

    for label, sparql in queries.items():
        print(f"--- {label}")
        print("   ", " ".join(sparql.split()))
        exact = engine.answer_exact(sparql)
        approx = engine.answer(sparql, top_k=5)
        print(f"    computation graph: {approx.computation_graph}")
        print(f"    GFinder (exact on observed): {exact.entity_names[:5]}"
              f"{' ...' if len(exact) > 5 else ''}")
        print(f"    HaLk top-5:                  {approx.entity_names}")
        print()


if __name__ == "__main__":
    main()
