"""Serving HaLk: micro-batching, multi-tier caching, graceful fallbacks.

Drives a :class:`repro.serve.ServeClient` against a trained model on the
FB237 analogue and shows the three serving wins in order:

1. **batching** — a concurrent workload coalesced into a handful of
   ``embed_batch``/``distance_to_all`` passes beats the sequential
   ``model.answer`` loop;
2. **caching** — repeating the workload is served from the answer cache
   (isomorphic queries share entries via canonicalisation);
3. **degradation** — an impossible deadline falls back to the LSH
   index, and the runtime keeps answering.

Run with::

    python examples/serve_demo.py
"""

import time

import numpy as np

from repro.ann import LshIndex
from repro.config import ModelConfig, TrainConfig
from repro.core import HalkModel, Trainer
from repro.kg import fb237_mini
from repro.queries import QuerySampler, build_workloads, get_structure
from repro.serve import ServeClient, ServeConfig, ServeRuntime, format_snapshot
from repro.sparql import SparqlEngine


def main() -> None:
    splits = fb237_mini(scale=0.4)
    kg = splits.train

    # train a small HaLk model to serve
    bundle = build_workloads(splits, queries_per_structure=40,
                             eval_queries_per_structure=5, seed=0)
    model = HalkModel(kg, ModelConfig(embedding_dim=16, hidden_dim=32, seed=0))
    Trainer(model, bundle.train,
            TrainConfig(epochs=40, batch_size=128, num_negatives=16,
                        learning_rate=2e-3,
                        embedding_learning_rate=2e-2)).train()

    # LSH index over the entity points enables the approximate fallback
    points = np.mod(model.entity_points.weight.data, 2.0 * np.pi)
    index = LshIndex(points, num_tables=8, bits_per_table=6, seed=0)

    engine = SparqlEngine(kg, model=model)
    runtime = ServeRuntime(
        model, kg=kg, index=index,
        config=ServeConfig(max_batch_size=32, flush_timeout=0.002,
                           num_workers=2))
    client = ServeClient(runtime, engine=engine)

    # a mixed workload of the multi-hop structures HaLk targets
    sampler = QuerySampler(kg, splits.test, seed=3)
    queries = [sampler.sample(get_structure(name)).query
               for name in ("2p", "3i", "pi", "2ipp") for _ in range(15)]

    with runtime:
        # 1. batched vs sequential
        start = time.perf_counter()
        for query in queries:
            model.answer(query, top_k=5)
        sequential = time.perf_counter() - start

        start = time.perf_counter()
        results = client.answer_many(queries, top_k=5)
        batched = time.perf_counter() - start
        print(f"--- batching ({len(queries)} queries)")
        print(f"    sequential loop: {sequential * 1000:7.1f} ms")
        print(f"    served, batched: {batched * 1000:7.1f} ms "
              f"({sequential / batched:.1f}x)")

        # 2. the same workload again: answered from the cache
        start = time.perf_counter()
        repeats = client.answer_many(queries, top_k=5)
        cached = time.perf_counter() - start
        hits = sum(r.source == "answer_cache" for r in repeats)
        print(f"--- caching")
        print(f"    repeat pass:     {cached * 1000:7.1f} ms "
              f"({hits}/{len(repeats)} answer-cache hits)")

        # 3. SPARQL front door + name resolution
        head, rel, _ = sorted(kg.triples)[0]
        sparql = (f"SELECT ?x WHERE {{ "
                  f"{kg.entity_names[head]} {kg.relation_names[rel]} ?x . }}")
        result = client.answer(sparql, top_k=5)
        print(f"--- SPARQL through the client")
        print(f"    {' '.join(sparql.split())}")
        print(f"    top-5 [{result.source}]: {client.entity_names(result)}")

        # 4. graceful degradation under an impossible deadline
        # (a fresh query — anything already served would hit the cache)
        fresh = sampler.sample(get_structure("3ippd")).query
        degraded = client.answer(fresh, top_k=5, deadline=0.0)
        print(f"--- degradation")
        print(f"    deadline=0 answered via '{degraded.source}' "
              f"with {len(degraded)} entities")

        print()
        print(format_snapshot(client.stats(), title="serve stats"))


if __name__ == "__main__":
    main()
