"""Quickstart: train HaLk on a synthetic KG and answer logical queries.

Run with::

    python examples/quickstart.py

Covers the full pipeline in under a minute: dataset -> query workload ->
training -> evaluation -> answering ad-hoc queries with all five logical
operators.
"""

import numpy as np

from repro.config import ModelConfig, TrainConfig
from repro.core import HalkModel, Trainer, evaluate
from repro.kg import fb237_mini
from repro.queries import (Difference, Entity, Intersection, Negation,
                           Projection, Union, build_workloads, execute)


def main() -> None:
    # 1. A synthetic FB15k-237 analogue: nested train/valid/test graphs.
    splits = fb237_mini(scale=0.4)
    print(f"dataset {splits.name}: {splits.test.num_entities} entities, "
          f"{splits.test.num_relations} relations, "
          f"{splits.train.num_triples}/{splits.valid.num_triples}/"
          f"{splits.test.num_triples} triples (train/valid/test)")

    # 2. Ground a query workload (every train triple becomes a 1p query;
    #    multi-hop structures are rejection-sampled).
    bundle = build_workloads(splits, queries_per_structure=50,
                             eval_queries_per_structure=15, seed=0)
    print(f"workload: {bundle.train.total()} training queries over "
          f"{len(bundle.train.structures())} structures")

    # 3. Train the model (scaled-down hyper-parameters; see DESIGN.md).
    model = HalkModel(splits.train, ModelConfig(embedding_dim=24,
                                                hidden_dim=48, seed=0))
    trainer = Trainer(model, bundle.train,
                      TrainConfig(epochs=60, batch_size=128,
                                  num_negatives=16, learning_rate=2e-3,
                                  embedding_learning_rate=2e-2, log_every=20))
    history = trainer.train()
    print(f"trained {model.num_parameters()} parameters in "
          f"{history.seconds:.1f}s, final loss {history.final_loss:.3f}")

    # 4. Evaluate with the paper's filtered MRR / Hits@3 protocol.
    results = evaluate(model, bundle.test)
    print("\nstructure   MRR    Hits@3")
    for structure in bundle.test.structures():
        metrics = results[structure]
        print(f"{structure:>9}  {metrics.mrr:5.3f}   {metrics.hits[3]:5.3f}")
    print(f"{'average':>9}  "
          f"{np.mean([m.mrr for m in results.values()]):5.3f}   "
          f"{np.mean([m.hits[3] for m in results.values()]):5.3f}")

    # 5. Answer an ad-hoc query using all five operators:
    #    "entities reached by r0 from e0 or by r1 from e1, that also have
    #     an r2 edge from e2, minus r3-neighbours of e3, and not
    #     r4-neighbours of e4" — purely illustrative.
    kg = splits.train
    some = [e for e in range(kg.num_entities) if kg.out_relations(e)][:5]
    rels = [next(iter(kg.out_relations(e))) for e in some]
    query = Intersection((
        Union((Projection(rels[0], Entity(some[0])),
               Projection(rels[1], Entity(some[1])))),
        Negation(Projection(rels[2], Entity(some[2]))),
    ))
    predicted = model.answer(query, top_k=5)
    truth = execute(query, splits.test)
    print(f"\nad-hoc query over U/P/I/N operators")
    print(f"  model top-5:   {predicted}")
    print(f"  exact answers: {sorted(truth)[:10]}"
          f"{' ...' if len(truth) > 10 else ''}")


if __name__ == "__main__":
    main()
