"""HaLk as a pruning strategy for subgraph matching (paper §IV-D, Fig. 6a).

Trains HaLk, then answers large query structures (2ipp, 3ipp, ...) with

* plain GFinder on the full observed graph, and
* GFinder restricted to HaLk's top-20 candidates per variable node,

reporting the accuracy (set F1 vs the complete graph's answers) and the
online time of both, i.e. a miniature Fig. 6a.

Note the scale-dependence: pruning pays off once the data graph is large
enough that join costs dominate the (roughly constant) cost of ranking
candidates with the embedding model, which is why this demo uses the
largest synthetic NELL graph.  On a toy graph plain matching wins.

Run with::

    python examples/pruning_accelerator.py
"""

import time

import numpy as np

from repro.config import ModelConfig, TrainConfig
from repro.core import HalkModel, Trainer, set_accuracy
from repro.kg import nell_mini
from repro.matching import GFinder, PrunedGFinder
from repro.queries import (LARGE_STRUCTURES, QuerySampler, build_workloads,
                           execute, get_structure)


def main() -> None:
    splits = nell_mini(scale=1.3)
    bundle = build_workloads(splits, queries_per_structure=40,
                             eval_queries_per_structure=5, seed=0)
    model = HalkModel(splits.train, ModelConfig(embedding_dim=16,
                                                hidden_dim=32, seed=0))
    Trainer(model, bundle.train,
            TrainConfig(epochs=20, batch_size=128, num_negatives=16,
                        learning_rate=2e-3,
                        embedding_learning_rate=2e-2)).train()

    gfinder = GFinder(splits.train)
    pruned = PrunedGFinder(model, gfinder, top_k=20)
    sampler = QuerySampler(splits.train, splits.test, seed=7)

    print(f"{'structure':>10} {'acc(full)':>10} {'acc(pruned)':>12} "
          f"{'t full (ms)':>12} {'t pruned (ms)':>14}")
    for name in LARGE_STRUCTURES:
        queries = [sampler.sample(get_structure(name)) for _ in range(5)]
        acc_full, acc_pruned, t_full, t_pruned = [], [], 0.0, 0.0
        for grounded in queries:
            truth = execute(grounded.query, splits.test)
            start = time.perf_counter()
            full_answers = gfinder.execute(grounded.query)
            t_full += time.perf_counter() - start
            start = time.perf_counter()
            pruned_answers = pruned.execute(grounded.query)
            t_pruned += time.perf_counter() - start
            acc_full.append(set_accuracy(full_answers, truth))
            acc_pruned.append(set_accuracy(pruned_answers, truth))
        print(f"{name:>10} {np.mean(acc_full):>10.3f} "
              f"{np.mean(acc_pruned):>12.3f} "
              f"{1000 * t_full / len(queries):>12.1f} "
              f"{1000 * t_pruned / len(queries):>14.1f}")


if __name__ == "__main__":
    main()
