"""Answering natural-language-style movie queries (paper Fig. 1 scenario).

Builds a small hand-crafted movie knowledge graph (directors, awards,
nationalities, films) with deliberately *missing* edges, trains HaLk on the
observed part, and answers the paper's running example:

    "What are the films directed by Oscar-winning American directors?"

plus difference and negation variants (Fig. 2).  The point of the demo:
the symbolic executor on the observed graph misses answers that depend on
unobserved facts, while the embedding executor can still rank them highly.

Run with::

    python examples/movie_queries.py
"""

import numpy as np

from repro.config import ModelConfig, TrainConfig
from repro.core import HalkModel, Trainer
from repro.kg import KnowledgeGraph
from repro.queries import (Difference, Entity, GroundedQuery, Intersection,
                           Negation, Projection, QueryWorkload, execute)

DIRECTORS = ["coppola", "bigelow", "kurosawa", "varda", "miyazaki", "lee"]
FILMS = ["gf2", "hurt_locker", "ran", "vagabond", "totoro", "bklyn",
         "dracula", "zero_dark", "dreams", "gleaners", "ponyo", "crouching"]
AWARDS = ["oscar", "palme"]
COUNTRIES = ["usa", "japan", "france"]
RELATIONS = ["won_by", "has_citizen", "directed"]


def build_graph() -> tuple[KnowledgeGraph, KnowledgeGraph]:
    """Return (observed graph, complete graph) over the movie domain."""
    names = DIRECTORS + FILMS + AWARDS + COUNTRIES
    index = {name: i for i, name in enumerate(names)}
    won_by, has_citizen, directed = 0, 1, 2

    # projection follows edge direction (head -> tail), so awards point at
    # their winners and countries at their citizens
    facts = [
        # awards (the Oscar/Palme winners)
        ("oscar", won_by, "coppola"), ("oscar", won_by, "bigelow"),
        ("palme", won_by, "kurosawa"), ("palme", won_by, "varda"),
        ("oscar", won_by, "lee"),
        # citizenship
        ("usa", has_citizen, "coppola"), ("usa", has_citizen, "bigelow"),
        ("japan", has_citizen, "kurosawa"), ("japan", has_citizen, "miyazaki"),
        ("france", has_citizen, "varda"), ("usa", has_citizen, "lee"),
        # filmographies (two films each)
        ("coppola", directed, "gf2"), ("coppola", directed, "dracula"),
        ("bigelow", directed, "hurt_locker"), ("bigelow", directed, "zero_dark"),
        ("kurosawa", directed, "ran"), ("kurosawa", directed, "dreams"),
        ("varda", directed, "vagabond"), ("varda", directed, "gleaners"),
        ("miyazaki", directed, "totoro"), ("miyazaki", directed, "ponyo"),
        ("lee", directed, "bklyn"), ("lee", directed, "crouching"),
    ]
    triples = [(index[h], r, index[t]) for h, r, t in facts]
    complete = KnowledgeGraph(len(names), len(RELATIONS), triples,
                              entity_names=names, relation_names=RELATIONS)
    # the observed graph is missing two facts — this is the KG
    # incompleteness that motivates embedding methods (§I)
    missing = {(index["bigelow"], directed, index["zero_dark"]),
               (index["oscar"], won_by, index["lee"])}
    observed = KnowledgeGraph(len(names), len(RELATIONS),
                              [t for t in triples if t not in missing],
                              entity_names=names, relation_names=RELATIONS)
    return observed, complete


def training_workload(kg: KnowledgeGraph) -> QueryWorkload:
    """All 1p links plus the 2-hop/intersection shapes of the demo."""
    workload = QueryWorkload()
    for head, rel, _ in sorted(kg.triples):
        query = Projection(rel, Entity(head))
        workload.add(GroundedQuery("1p", query,
                                   frozenset(kg.targets(head, rel)),
                                   frozenset()))
    index = {name: i for i, name in enumerate(kg.entity_names)}
    for award in AWARDS:
        for country in COUNTRIES:
            query = Projection(2, Intersection((
                Projection(0, Entity(index[award])),
                Projection(1, Entity(index[country])))))
            answers = execute(query, kg)
            if answers:
                workload.add(GroundedQuery("ip", query,
                                           frozenset(answers), frozenset()))
    # difference and negation shapes so those operator networks train too
    def add_if_nonempty(structure: str, query) -> None:
        answers = execute(query, kg)
        if answers and len(answers) < kg.num_entities // 2:
            workload.add(GroundedQuery(structure, query,
                                       frozenset(answers), frozenset()))

    anchor_pairs = [(a, b) for a in AWARDS + COUNTRIES
                    for b in AWARDS + COUNTRIES if a != b]
    for a, b in anchor_pairs:
        rel_a = 0 if a in AWARDS else 1
        rel_b = 0 if b in AWARDS else 1
        add_if_nonempty("2d", Difference((
            Projection(rel_a, Entity(index[a])),
            Projection(rel_b, Entity(index[b])))))
        add_if_nonempty("2in", Intersection((
            Projection(rel_a, Entity(index[a])),
            Negation(Projection(rel_b, Entity(index[b]))))))
    return workload


def show(kg: KnowledgeGraph, label: str, entities) -> None:
    names = sorted(kg.entity_names[e] for e in entities)
    print(f"  {label}: {', '.join(names) if names else '(none)'}")


def main() -> None:
    observed, complete = build_graph()
    index = {name: i for i, name in enumerate(observed.entity_names)}
    print(f"movie KG: {observed.num_triples} observed / "
          f"{complete.num_triples} true facts")

    model = HalkModel(observed, ModelConfig(embedding_dim=16, hidden_dim=32,
                                            seed=0, num_groups=6))
    trainer = Trainer(model, training_workload(observed),
                      TrainConfig(epochs=150, batch_size=16, num_negatives=8,
                                  learning_rate=2e-3,
                                  embedding_learning_rate=1e-2))
    history = trainer.train()
    print(f"trained in {history.seconds:.1f}s, loss {history.final_loss:.3f}\n")

    # Fig. 1: films directed by Oscar-winning American directors
    question = Projection(2, Intersection((
        Projection(0, Entity(index["oscar"])),
        Projection(1, Entity(index["usa"])))))
    print("Q1: films directed by Oscar-winning American directors")
    show(complete, "ground truth (complete KG)", execute(question, complete))
    show(observed, "symbolic executor (observed)", execute(question, observed))
    show(observed, "HaLk top-6", model.answer(question, top_k=6))

    # Fig. 2(a): difference — Palme winners who have not won the Oscar
    diff_query = Difference((Projection(0, Entity(index["palme"])),
                             Projection(0, Entity(index["oscar"]))))
    print("\nQ2: Palme d'Or winners who never won an Oscar (difference)")
    show(complete, "ground truth", execute(diff_query, complete))
    show(observed, "HaLk top-2", model.answer(diff_query, top_k=2))

    # Fig. 2(b): negation — directors who are not US citizens
    neg_query = Intersection((Projection(0, Entity(index["palme"])),
                              Negation(Projection(1, Entity(index["usa"])))))
    print("\nQ3: Palme winners who are not American (negation)")
    show(complete, "ground truth", execute(neg_query, complete))
    show(observed, "HaLk top-2", model.answer(neg_query, top_k=2))


if __name__ == "__main__":
    main()
